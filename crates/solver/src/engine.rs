//! The persistent, incremental domination engine.
//!
//! The Section 5.3 best-response reduction solves one constrained
//! minimum dominating set per eccentricity guess `h`, and consecutive
//! guesses differ only in that every coverage set `covers[s]` *grows*
//! (from the radius-`(h−2)` ball to the radius-`(h−1)` ball around
//! `s`). The seed implementation rebuilt the whole solver state —
//! coverage clones, the dominator transpose, the packing order — from
//! scratch at every `h`; the [`DominationEngine`] instead owns that
//! state across guesses and mutates it monotonically via
//! [`DominationEngine::add_pair`] (see `DESIGN.md` §4.3).
//!
//! The engine also carries every scratch buffer the branch-and-bound
//! needs (one probe bitset and one candidate list **per recursion
//! depth**, a marginal-gain array, a packing scratch), so repeated
//! solves — thousands per dynamics round — allocate nothing after
//! warm-up.
//!
//! Search improvements over the seed branch-and-bound (each is
//! admissible, so optimality is preserved — the property suite checks
//! cost parity against both the per-`h` rebuild and brute force):
//!
//! * **dynamic fractional bound** — `⌈uncovered / max marginal gain⌉`
//!   with the max gain recomputed per node instead of once at the
//!   root; deep in the tree residual gains shrink and this bound
//!   tightens dramatically;
//! * **top-k gain bound** — the minimum number of candidates whose
//!   *current* marginal gains can sum to `uncovered` (a counting pass
//!   over the gain histogram); dominates the fractional bound;
//! * **greedy packing bound** — uncovered vertices with pairwise
//!   disjoint dominator sets (as in the seed, near-tight on sparse
//!   instances);
//! * **redundancy-pruned greedy upper bound** — the greedy seed
//!   solution with provably superfluous elements removed, which
//!   tightens the initial incumbent by 1–2 elements on dense
//!   instances;
//! * **sibling cutoff** — once the incumbent matches `chosen + 1`
//!   elements, no remaining sibling branch can improve it.

use crate::bitset::BitSet;
use crate::dominating::{DominationInstance, Solution};

/// Incremental solver state for a growing family of domination
/// instances over a fixed ground set `0..n`.
///
/// Construction: [`DominationEngine::new`] (or
/// [`DominationEngine::reset`] to recycle allocations), then feed
/// coverage pairs with [`add_pair`](DominationEngine::add_pair) —
/// typically one BFS-order cursor sweep per radius. Solving never
/// invalidates the incremental state, so the caller interleaves
/// `add_pair` batches and [`solve_exact`](DominationEngine::solve_exact)
/// calls freely.
#[derive(Debug, Clone)]
pub struct DominationEngine {
    n: usize,
    /// `covers[s]` = set of vertices dominated when `s` is chosen.
    covers: Vec<BitSet>,
    /// Vertices that must be dominated.
    universe: BitSet,
    /// Elements already in `D` for free (their coverage is merged into
    /// [`Self::initial_covered`] as it arrives).
    forced: Vec<u32>,
    forced_set: BitSet,
    /// Union of the forced elements' coverage, maintained by `add_pair`.
    initial_covered: BitSet,
    /// Union of *all* coverage — feasibility is `any_cover ⊇ universe`.
    any_cover: BitSet,
    /// Transpose: `dominators[v]` = elements covering `v` (universe
    /// vertices only), as a list for branching…
    dominators: Vec<Vec<u32>>,
    /// …and as bitsets for the packing bound.
    dominator_sets: Vec<BitSet>,
    /// `|covers[s] ∩ universe|` per element, maintained by `add_pair`.
    cover_sizes: Vec<u32>,
    /// `max(cover_sizes)` — the static fractional-bound denominator.
    max_cover: usize,

    // ---- per-solve scratch, reused across solves ----
    packing_order: Vec<u32>,
    /// One probe bitset per recursion depth (the seed cloned two fresh
    /// bitsets per candidate).
    probe_pool: Vec<BitSet>,
    /// One `universe ∖ covered` mask per recursion depth.
    live_pool: Vec<BitSet>,
    /// One candidate list per recursion depth.
    cand_pool: Vec<Vec<(u32, u32)>>,
    /// One alive-element list per recursion depth (elements with
    /// positive marginal gain — monotone shrinking down any path).
    alive_pool: Vec<Vec<u32>>,
    /// Alive list for the root call.
    root_alive: Vec<u32>,
    /// Marginal gain per element at the current search node.
    gains: Vec<u32>,
    /// Counting histogram over gains for the top-k bound.
    gain_hist: Vec<u32>,
    used_scratch: BitSet,
    greedy_covered: BitSet,
}

impl Default for DominationEngine {
    fn default() -> Self {
        Self::new(BitSet::new(0), &[])
    }
}

impl DominationEngine {
    /// Fresh engine over ground set `0..universe.capacity()` with empty
    /// coverage.
    pub fn new(universe: BitSet, forced: &[u32]) -> Self {
        let n = universe.capacity();
        let mut e = DominationEngine {
            n,
            covers: Vec::new(),
            universe: BitSet::new(0),
            forced: Vec::new(),
            forced_set: BitSet::new(0),
            initial_covered: BitSet::new(0),
            any_cover: BitSet::new(0),
            dominators: Vec::new(),
            dominator_sets: Vec::new(),
            cover_sizes: Vec::new(),
            max_cover: 0,
            packing_order: Vec::new(),
            probe_pool: Vec::new(),
            live_pool: Vec::new(),
            cand_pool: Vec::new(),
            alive_pool: Vec::new(),
            root_alive: Vec::new(),
            gains: vec![0; n],
            gain_hist: Vec::new(),
            used_scratch: BitSet::new(0),
            greedy_covered: BitSet::new(0),
        };
        e.reset(universe, forced);
        e
    }

    /// Builds the engine from a one-shot [`DominationInstance`] — the
    /// rebuild path the seed solver took at every `h`, kept as the
    /// reference (and bench baseline) for the incremental path.
    pub fn from_instance(inst: &DominationInstance) -> Self {
        let mut e = Self::new(inst.universe.clone(), &inst.forced);
        for (s, c) in inst.covers.iter().enumerate() {
            for v in c.iter() {
                e.add_pair(s as u32, v);
            }
        }
        e
    }

    /// Re-targets the engine at a new instance family, recycling the
    /// allocations grow-only: per-element buffers keep their word/heap
    /// storage across *any* size change (consecutive dynamics views
    /// almost never share a size, so the old same-`n`-only fast path
    /// reallocated ~3n buffers per solve), and only the per-depth
    /// pools — whose bitsets are pinned to the old capacity — are
    /// dropped when `n` changes, bounded by the previous search depth.
    pub fn reset(&mut self, universe: BitSet, forced: &[u32]) {
        let n = universe.capacity();
        if n != self.n {
            self.probe_pool.clear();
            self.live_pool.clear();
            self.cand_pool.clear();
            self.alive_pool.clear();
            self.n = n;
        }
        self.covers.truncate(n);
        for c in &mut self.covers {
            c.reset(n);
        }
        self.covers.resize_with(n, || BitSet::new(n));
        self.dominators.truncate(n);
        for d in &mut self.dominators {
            d.clear();
        }
        self.dominators.resize_with(n, Vec::new);
        self.dominator_sets.truncate(n);
        for d in &mut self.dominator_sets {
            d.reset(n);
        }
        self.dominator_sets.resize_with(n, || BitSet::new(n));
        self.cover_sizes.clear();
        self.cover_sizes.resize(n, 0);
        self.gains.clear();
        self.gains.resize(n, 0);
        self.forced_set.reset(n);
        self.initial_covered.reset(n);
        self.any_cover.reset(n);
        self.used_scratch.reset(n);
        self.greedy_covered.reset(n);
        self.max_cover = 0;
        self.universe = universe;
        self.forced.clear();
        self.forced.extend_from_slice(forced);
        for &f in forced {
            self.forced_set.insert(f);
        }
    }

    /// Records that choosing `s` dominates `v`, updating the dominator
    /// transpose, the feasibility union, and (for forced `s`) the free
    /// initial coverage. Idempotent; coverage only ever grows.
    #[inline]
    pub fn add_pair(&mut self, s: u32, v: u32) {
        if self.covers[s as usize].insert(v) {
            self.any_cover.insert(v);
            if self.universe.contains(v) {
                self.dominators[v as usize].push(s);
                self.dominator_sets[v as usize].insert(s);
                let size = &mut self.cover_sizes[s as usize];
                *size += 1;
                self.max_cover = self.max_cover.max(*size as usize);
            }
            if self.forced_set.contains(s) {
                self.initial_covered.insert(v);
            }
        }
    }

    /// Whether every universe vertex currently has at least one
    /// dominator (maintained incrementally — O(words)).
    pub fn is_feasible(&self) -> bool {
        self.any_cover.is_superset(&self.universe)
    }

    /// Greedy `(1 + ln n)`-approximation over the current coverage:
    /// repeatedly take the element covering the most still-uncovered
    /// universe vertices (ties to the smallest element, as in the
    /// seed). Returns `None` if infeasible.
    pub fn solve_greedy(&mut self) -> Option<Solution> {
        let mut chosen = Vec::new();
        self.greedy_into(&mut chosen).then(|| {
            chosen.sort_unstable();
            chosen
        })
    }

    /// Greedy into a caller-provided vec; returns feasibility. The
    /// chosen elements are in pick order (not sorted).
    fn greedy_into(&mut self, chosen: &mut Vec<u32>) -> bool {
        chosen.clear();
        self.greedy_covered.clone_from(&self.initial_covered);
        while self.greedy_covered.missing_from(&self.universe) > 0 {
            let mut best: Option<(usize, u32)> = None;
            for s in 0..self.n as u32 {
                let gain = self.marginal_gain(s, &self.greedy_covered);
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, s));
                }
            }
            let Some((_, s)) = best else { return false }; // infeasible
            self.greedy_covered.union_with(&self.covers[s as usize]);
            chosen.push(s);
        }
        true
    }

    /// Whether `covers[a] ∩ live ⊆ covers[b] ∩ live`, word-parallel
    /// (`live` = `universe ∖ covered`).
    #[inline]
    fn residual_subset(&self, a: u32, b: u32, live: &BitSet) -> bool {
        self.covers[a as usize]
            .words()
            .iter()
            .zip(self.covers[b as usize].words())
            .zip(live.words())
            .all(|((aw, bw), lw)| aw & lw & !bw == 0)
    }

    /// `|covers[s] ∩ universe ∖ covered|`, word-parallel.
    #[inline]
    fn marginal_gain(&self, s: u32, covered: &BitSet) -> usize {
        let mut gain = 0usize;
        for ((cw, uw), dw) in
            self.covers[s as usize].words().iter().zip(self.universe.words()).zip(covered.words())
        {
            gain += (cw & uw & !dw).count_ones() as usize;
        }
        gain
    }

    /// Greedy solution with provably redundant elements removed — a
    /// tighter incumbent to seed the branch-and-bound with.
    fn greedy_pruned(&mut self) -> Option<Solution> {
        let mut chosen = Vec::new();
        if !self.greedy_into(&mut chosen) {
            return None;
        }
        // Drop any element whose removal keeps the universe covered;
        // later picks first (they have the smallest marginal gains).
        let mut i = chosen.len();
        while i > 0 {
            i -= 1;
            self.greedy_covered.clone_from(&self.initial_covered);
            for (j, &s) in chosen.iter().enumerate() {
                if j != i {
                    self.greedy_covered.union_with(&self.covers[s as usize]);
                }
            }
            if self.greedy_covered.is_superset(&self.universe) {
                chosen.remove(i);
            }
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Exact constrained minimum via branch-and-bound over the current
    /// coverage state. Same contract as
    /// [`DominationInstance::solve_exact`]: only solutions with
    /// strictly fewer than `cutoff` extra elements are reported;
    /// `None` if infeasible or nothing beats the cutoff.
    pub fn solve_exact(&mut self, cutoff: usize) -> Option<Solution> {
        if !self.is_feasible() {
            return None;
        }
        // Packing order: few-dominator vertices first makes the greedy
        // packing larger, hence the bound stronger.
        self.packing_order.clear();
        self.packing_order.extend(self.universe.iter());
        let dominators = &self.dominators;
        self.packing_order.sort_unstable_by_key(|&v| dominators[v as usize].len());
        // Pruned-greedy incumbent.
        let mut best = self.greedy_pruned();
        let mut best_len = best.as_ref().map(|b| b.len()).unwrap_or(usize::MAX).min(cutoff);
        if best.as_ref().is_some_and(|b| b.len() >= cutoff) {
            best = None;
        }
        let mut chosen: Vec<u32> = Vec::new();
        self.acquire_depth(0);
        let mut root_covered = std::mem::replace(&mut self.probe_pool[0], BitSet::new(0));
        root_covered.clone_from(&self.initial_covered);
        // Root alive set: every element that covers anything. Children
        // narrow it as marginal gains hit zero (gains only shrink down
        // a path, so a dead element stays dead in the whole subtree).
        let mut root_alive = std::mem::take(&mut self.root_alive);
        root_alive.clear();
        root_alive.extend((0..self.n as u32).filter(|&s| self.cover_sizes[s as usize] > 0));
        self.recurse(1, &root_covered, &root_alive, &mut chosen, &mut best, &mut best_len);
        self.root_alive = root_alive;
        self.probe_pool[0] = root_covered;
        best.map(|mut b| {
            b.sort_unstable();
            b
        })
    }

    /// Ensures the per-depth scratch pools reach slot `depth`.
    fn acquire_depth(&mut self, depth: usize) {
        while self.probe_pool.len() <= depth {
            self.probe_pool.push(BitSet::new(self.n));
        }
        while self.live_pool.len() <= depth {
            self.live_pool.push(BitSet::new(self.n));
        }
        while self.cand_pool.len() <= depth {
            self.cand_pool.push(Vec::new());
        }
        while self.alive_pool.len() <= depth {
            self.alive_pool.push(Vec::new());
        }
    }

    /// Greedy packing: count uncovered vertices whose dominator sets
    /// are pairwise disjoint — each needs a distinct chosen element.
    fn packing_bound(&mut self, live: &BitSet) -> usize {
        self.used_scratch.clear();
        let mut count = 0usize;
        for i in 0..self.packing_order.len() {
            let v = self.packing_order[i];
            if live.contains(v)
                && self.used_scratch.intersection_len(&self.dominator_sets[v as usize]) == 0
            {
                count += 1;
                self.used_scratch.union_with(&self.dominator_sets[v as usize]);
            }
        }
        count
    }

    /// Packing bound strengthened with the current gains: each packing
    /// vertex needs its *own* element, whose contribution is at most
    /// the best gain among that vertex's dominators; whatever coverage
    /// is still missing costs `⌈deficit / max_gain⌉` more elements.
    /// Strictly dominates both the plain packing bound and the
    /// fractional bound. Requires `self.gains` to be fresh. Early-outs
    /// at `need` (the caller prunes at that point anyway).
    fn packing_gain_bound(
        &mut self,
        live: &BitSet,
        uncovered: usize,
        max_gain: usize,
        need: usize,
    ) -> usize {
        self.used_scratch.clear();
        let mut count = 0usize;
        let mut cap_sum = 0usize;
        for i in 0..self.packing_order.len() {
            let v = self.packing_order[i];
            if live.contains(v)
                && self.used_scratch.intersection_len(&self.dominator_sets[v as usize]) == 0
            {
                count += 1;
                if count >= need {
                    return count;
                }
                let mut best = 0u32;
                for &s in &self.dominators[v as usize] {
                    best = best.max(self.gains[s as usize]);
                }
                cap_sum += best as usize;
                self.used_scratch.union_with(&self.dominator_sets[v as usize]);
            }
        }
        count + uncovered.saturating_sub(cap_sum).div_ceil(max_gain)
    }

    /// Minimum number of elements whose current marginal gains can sum
    /// to `uncovered` — a counting pass over `self.gains` from the
    /// largest gain down. Dominates `⌈uncovered / max_gain⌉`.
    fn topk_gain_bound(&mut self, alive: &[u32], uncovered: usize, max_gain: usize) -> usize {
        self.gain_hist.clear();
        self.gain_hist.resize(max_gain + 1, 0);
        for &s in alive {
            let g = self.gains[s as usize];
            if g > 0 {
                self.gain_hist[(g as usize).min(max_gain)] += 1;
            }
        }
        let mut need = uncovered;
        let mut k = 0usize;
        for g in (1..=max_gain).rev() {
            let cnt = self.gain_hist[g] as usize;
            if cnt == 0 {
                continue;
            }
            let take = cnt.min(need.div_ceil(g));
            k += take;
            need = need.saturating_sub(take * g);
            if need == 0 {
                break;
            }
        }
        debug_assert_eq!(need, 0, "total gain always covers the deficit when feasible");
        k
    }

    fn recurse(
        &mut self,
        depth: usize,
        covered: &BitSet,
        alive: &[u32],
        chosen: &mut Vec<u32>,
        best: &mut Option<Solution>,
        best_len: &mut usize,
    ) {
        self.acquire_depth(depth);
        // The still-uncovered mask, computed once per node; every
        // bound and the branch selection below read it.
        let mut live = std::mem::replace(&mut self.live_pool[depth], BitSet::new(0));
        live.assign_difference(&self.universe, covered);
        let uncovered = live.len();
        if uncovered == 0 {
            if chosen.len() < *best_len {
                *best_len = chosen.len();
                *best = Some(chosen.clone());
            }
            self.live_pool[depth] = live;
            return;
        }
        // Any completion needs at least one more element.
        if chosen.len() + 1 >= *best_len {
            self.live_pool[depth] = live;
            return;
        }
        self.recurse_at(depth, covered, &live, uncovered, alive, chosen, best, best_len);
        self.live_pool[depth] = live;
    }

    /// The body of a search node past the trivial exits; `live` is
    /// `universe ∖ covered` with `uncovered = |live|` (> 0).
    #[allow(clippy::too_many_arguments)] // internal hot path, split for pool juggling
    fn recurse_at(
        &mut self,
        depth: usize,
        covered: &BitSet,
        live: &BitSet,
        uncovered: usize,
        alive: &[u32],
        chosen: &mut Vec<u32>,
        best: &mut Option<Solution>,
        best_len: &mut usize,
    ) {
        // How many further elements a solution may use and still beat
        // the incumbent (≥ 2 after the entry checks).
        let need = *best_len - chosen.len();
        // Cheap static fractional bound first (free).
        let frac = uncovered.div_ceil(self.max_cover.max(1));
        if frac >= need {
            return;
        }
        // Dynamic bounds where they can pay: on large ground sets (the
        // word-parallel gain sweep amortises) or when `uncovered`
        // spans several maximum covers (deep subtree). Residual gains
        // shrink as coverage grows, so these keep tightening while the
        // static bound stays put; on the tiny views of the dynamics
        // hot path they would be pure overhead per node, so those keep
        // the seed's static pair instead.
        let dynamic = self.n > 64 || uncovered > self.max_cover;
        let mut alive_next = std::mem::take(&mut self.alive_pool[depth]);
        alive_next.clear();
        if dynamic {
            // Gain sweep over the parent's alive list only — dead
            // elements stay dead in the whole subtree.
            let mut max_gain = 0u32;
            for &s in alive {
                let gain = self.covers[s as usize].intersection_len(live) as u32;
                self.gains[s as usize] = gain;
                if gain > 0 {
                    alive_next.push(s);
                    max_gain = max_gain.max(gain);
                }
            }
            if max_gain == 0 {
                // Unreachable for feasible instances (covered only
                // grows), but a cheap guard beats a debug-only
                // invariant here.
                self.alive_pool[depth] = alive_next;
                return;
            }
            let gain_bound = self.topk_gain_bound(&alive_next, uncovered, max_gain as usize);
            if gain_bound >= need {
                self.alive_pool[depth] = alive_next;
                return;
            }
            if self.packing_gain_bound(live, uncovered, max_gain as usize, need) >= need {
                self.alive_pool[depth] = alive_next;
                return;
            }
        } else {
            alive_next.extend_from_slice(alive);
            if frac.max(self.packing_bound(live)) >= need {
                self.alive_pool[depth] = alive_next;
                return;
            }
        }
        // Branch on the uncovered vertex with the fewest dominators
        // (fail-first).
        let mut branch_v: Option<(usize, u32)> = None;
        for v in live.iter() {
            let deg = self.dominators[v as usize].len();
            if branch_v.is_none_or(|(bd, _)| deg < bd) {
                branch_v = Some((deg, v));
                if deg <= 1 {
                    break;
                }
            }
        }
        let (_, v) = branch_v.expect("uncovered > 0 implies an uncovered vertex exists");
        // Candidates: the dominators of `v`, best current marginal
        // gain first. Every dominator of an uncovered vertex is alive,
        // so on the dynamic path `self.gains` is fresh for all of
        // them; the static path computes the few gains directly.
        let mut cands = std::mem::take(&mut self.cand_pool[depth]);
        cands.clear();
        if dynamic {
            cands.extend(self.dominators[v as usize].iter().map(|&s| (self.gains[s as usize], s)));
        } else {
            cands.extend(
                self.dominators[v as usize]
                    .iter()
                    .map(|&s| (self.covers[s as usize].intersection_len(live) as u32, s)),
            );
        }
        cands.sort_unstable_by(|a, b| b.cmp(a));
        // Subset-dominance elimination: a candidate whose residual
        // coverage is contained in an earlier (≥-gain) candidate's can
        // be swapped for that candidate in any solution without
        // growing it, so its branch is redundant. Cuts the effective
        // branching factor on dense instances for O(deg²·words).
        let mut kept = 0usize;
        for i in 0..cands.len() {
            let (gi, si) = cands[i];
            let dominated = (0..kept).any(|j| self.residual_subset(si, cands[j].1, live));
            if !dominated {
                cands[kept] = (gi, si);
                kept += 1;
            }
        }
        cands.truncate(kept);
        // Terminal-level shortcut: when only a single further element
        // can beat the incumbent, that element must cover *all*
        // uncovered vertices by itself — and it must dominate `v`, so
        // it is among `cands`. A scan of the gains replaces the
        // recursion; picking the first full-gain candidate in sorted
        // order matches exactly what the recursion would have
        // recorded.
        if need == 2 {
            if let Some(&(_, s)) = cands.iter().find(|&&(g, _)| g as usize == uncovered) {
                chosen.push(s);
                *best_len = chosen.len();
                *best = Some(chosen.clone());
                chosen.pop();
            }
            self.cand_pool[depth] = cands;
            self.alive_pool[depth] = alive_next;
            return;
        }
        let mut probe = std::mem::replace(&mut self.probe_pool[depth], BitSet::new(0));
        for &(_, s) in &cands {
            probe.clone_from(covered);
            probe.union_with(&self.covers[s as usize]);
            chosen.push(s);
            self.recurse(depth + 1, &probe, &alive_next, chosen, best, best_len);
            chosen.pop();
            // No remaining sibling can beat an incumbent of
            // `chosen.len() + 1` elements.
            if *best_len <= chosen.len() + 1 {
                break;
            }
        }
        self.probe_pool[depth] = probe;
        self.cand_pool[depth] = cands;
        self.alive_pool[depth] = alive_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::{generators, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph_instance(g: &Graph, forced: Vec<u32>) -> DominationInstance {
        DominationInstance::closed_neighborhoods(g, forced)
    }

    #[test]
    fn engine_matches_instance_solver() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        for trial in 0..20 {
            let g = generators::gnp(13, 0.22, &mut rng).unwrap();
            let inst = graph_instance(&g, if trial % 3 == 0 { vec![1] } else { vec![] });
            let via_instance = inst.solve_exact(usize::MAX).map(|s| s.len());
            let via_engine =
                DominationEngine::from_instance(&inst).solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(via_instance, via_engine, "trial {trial}");
        }
    }

    #[test]
    fn incremental_growth_matches_rebuild_at_every_radius() {
        // Grow coverage ring by ring (exactly the best-response access
        // pattern) and check each intermediate solve against a from-
        // scratch instance of the same coverage.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let g = generators::gnp_connected(16, 0.18, 300, &mut rng).unwrap();
        let n = g.node_count();
        let csr = ncg_graph::CsrGraph::from_graph(&g);
        let mut buf = ncg_graph::bfs::DistanceBuffer::with_capacity(n);
        let dist: Vec<Vec<u32>> = (0..n as u32)
            .map(|s| {
                csr.bfs(s, &mut buf);
                buf.distances().to_vec()
            })
            .collect();
        let mut engine = DominationEngine::new(BitSet::full(n), &[2]);
        for r in 0..4u32 {
            for s in 0..n as u32 {
                for v in 0..n as u32 {
                    if dist[s as usize][v as usize] == r {
                        engine.add_pair(s, v);
                    }
                }
            }
            let covers: Vec<BitSet> = (0..n as u32)
                .map(|s| {
                    BitSet::from_elems(
                        n,
                        (0..n as u32).filter(|&v| dist[s as usize][v as usize] <= r),
                    )
                })
                .collect();
            let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![2] };
            assert_eq!(
                engine.solve_exact(usize::MAX).map(|s| s.len()),
                inst.solve_exact(usize::MAX).map(|s| s.len()),
                "radius {r}"
            );
            assert_eq!(
                engine.solve_greedy().map(|s| s.len()),
                inst.solve_greedy().map(|s| s.len()),
                "greedy radius {r}"
            );
        }
    }

    #[test]
    fn reset_recycles_without_stale_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let g1 = generators::gnp(12, 0.3, &mut rng).unwrap();
        let g2 = generators::gnp(12, 0.2, &mut rng).unwrap();
        let i1 = graph_instance(&g1, vec![]);
        let i2 = graph_instance(&g2, vec![0]);
        let mut engine = DominationEngine::from_instance(&i1);
        let first = engine.solve_exact(usize::MAX);
        assert_eq!(first, i1.solve_exact(usize::MAX));
        // Reuse for a different instance of the same size.
        engine.reset(i2.universe.clone(), &i2.forced);
        for (s, c) in i2.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(
            engine.solve_exact(usize::MAX).map(|s| s.len()),
            i2.solve_exact(usize::MAX).map(|s| s.len())
        );
        // And for a different size.
        let g3 = generators::path(7);
        let i3 = graph_instance(&g3, vec![]);
        engine.reset(i3.universe.clone(), &i3.forced);
        for (s, c) in i3.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(engine.solve_exact(usize::MAX).unwrap().len(), 3);
        // And growing again after the shrink (the grow-only reuse
        // path re-targets the recycled word storage).
        let g4 = generators::cycle(21);
        let i4 = graph_instance(&g4, vec![]);
        engine.reset(i4.universe.clone(), &i4.forced);
        for (s, c) in i4.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(
            engine.solve_exact(usize::MAX).map(|s| s.len()),
            i4.solve_exact(usize::MAX).map(|s| s.len())
        );
    }

    #[test]
    fn infeasible_until_coverage_arrives() {
        let mut engine = DominationEngine::new(BitSet::full(3), &[]);
        assert!(!engine.is_feasible());
        assert_eq!(engine.solve_exact(usize::MAX), None);
        assert_eq!(engine.solve_greedy(), None);
        for v in 0..3 {
            engine.add_pair(0, v);
        }
        assert!(engine.is_feasible());
        assert_eq!(engine.solve_exact(usize::MAX).unwrap(), vec![0]);
    }

    #[test]
    fn cutoff_contract_matches_instance_solver() {
        let inst = graph_instance(&generators::path(9), vec![]);
        let mut engine = DominationEngine::from_instance(&inst);
        assert_eq!(engine.solve_exact(3), None, "optimum 3 is not < 3");
        assert_eq!(engine.solve_exact(4).unwrap().len(), 3);
        assert_eq!(engine.solve_exact(0), None);
    }

    #[test]
    fn forced_coverage_is_free_and_never_rebought() {
        let inst = graph_instance(&generators::path(9), vec![0]);
        let mut engine = DominationEngine::from_instance(&inst);
        let extra = engine.solve_exact(usize::MAX).unwrap();
        assert!(extra.len() <= 3);
        assert!(!extra.contains(&0));
    }
}
