//! The persistent, incremental domination engine.
//!
//! The Section 5.3 best-response reduction solves one constrained
//! minimum dominating set per eccentricity guess `h`, and consecutive
//! guesses differ only in that every coverage set `covers[s]` *grows*
//! (from the radius-`(h−2)` ball to the radius-`(h−1)` ball around
//! `s`). The seed implementation rebuilt the whole solver state —
//! coverage clones, the dominator transpose, the packing order — from
//! scratch at every `h`; the [`DominationEngine`] instead owns that
//! state across guesses and mutates it monotonically via
//! [`DominationEngine::add_pair`] (see `DESIGN.md` §4.3).
//!
//! The engine also carries every scratch buffer the branch-and-bound
//! needs (one probe bitset and one candidate list **per recursion
//! depth**, a marginal-gain array, a packing scratch), so repeated
//! solves — thousands per dynamics round — allocate nothing after
//! warm-up.
//!
//! Search improvements over the seed branch-and-bound (each is
//! admissible, so optimality is preserved — the property suite checks
//! cost parity against both the per-`h` rebuild and brute force):
//!
//! * **dynamic fractional bound** — `⌈uncovered / max marginal gain⌉`
//!   with the max gain recomputed per node instead of once at the
//!   root; deep in the tree residual gains shrink and this bound
//!   tightens dramatically;
//! * **top-k gain bound** — the minimum number of candidates whose
//!   *current* marginal gains can sum to `uncovered` (a counting pass
//!   over the gain histogram); dominates the fractional bound;
//! * **greedy packing bound** — uncovered vertices with pairwise
//!   disjoint dominator sets (as in the seed, near-tight on sparse
//!   instances);
//! * **redundancy-pruned greedy upper bound** — the greedy seed
//!   solution with provably superfluous elements removed, which
//!   tightens the initial incumbent by 1–2 elements on dense
//!   instances;
//! * **sibling cutoff** — once the incumbent matches `chosen + 1`
//!   elements, no remaining sibling branch can improve it.
//!
//! Large ground sets can additionally fan the search out over the
//! work-stealing pool via
//! [`DominationEngine::solve_exact_parallel`]: the root of the tree is
//! expanded breadth-first into a canonical frontier of subproblems,
//! workers race them to the optimal *cost* under a shared atomic
//! incumbent bound, and a second pass with the now-tight bound selects
//! the same solution the sequential search would have returned —
//! bit-identical output for any thread count or steal schedule
//! (`DESIGN.md` §8).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;

use crate::bitset::BitSet;
use crate::dominating::{DominationInstance, Solution};

/// Incremental solver state for a growing family of domination
/// instances over a fixed ground set `0..n`.
///
/// Construction: [`DominationEngine::new`] (or
/// [`DominationEngine::reset`] to recycle allocations), then feed
/// coverage pairs with [`add_pair`](DominationEngine::add_pair) —
/// typically one BFS-order cursor sweep per radius. Solving never
/// invalidates the incremental state, so the caller interleaves
/// `add_pair` batches and [`solve_exact`](DominationEngine::solve_exact)
/// calls freely.
#[derive(Debug, Clone)]
pub struct DominationEngine {
    n: usize,
    /// `covers[s]` = set of vertices dominated when `s` is chosen.
    covers: Vec<BitSet>,
    /// Vertices that must be dominated.
    universe: BitSet,
    /// Elements already in `D` for free (their coverage is merged into
    /// [`Self::initial_covered`] as it arrives).
    forced: Vec<u32>,
    forced_set: BitSet,
    /// Union of the forced elements' coverage, maintained by `add_pair`.
    initial_covered: BitSet,
    /// Union of *all* coverage — feasibility is `any_cover ⊇ universe`.
    any_cover: BitSet,
    /// Transpose: `dominators[v]` = elements covering `v` (universe
    /// vertices only), as a list for branching…
    dominators: Vec<Vec<u32>>,
    /// …and as bitsets for the packing bound.
    dominator_sets: Vec<BitSet>,
    /// `|covers[s] ∩ universe|` per element, maintained by `add_pair`.
    cover_sizes: Vec<u32>,
    /// `max(cover_sizes)` — the static fractional-bound denominator.
    max_cover: usize,

    // ---- per-solve scratch, reused across solves ----
    packing_order: Vec<u32>,
    /// One probe bitset per recursion depth (the seed cloned two fresh
    /// bitsets per candidate).
    probe_pool: Vec<BitSet>,
    /// One `universe ∖ covered` mask per recursion depth.
    live_pool: Vec<BitSet>,
    /// One candidate list per recursion depth.
    cand_pool: Vec<Vec<(u32, u32)>>,
    /// One alive-element list per recursion depth (elements with
    /// positive marginal gain — monotone shrinking down any path).
    alive_pool: Vec<Vec<u32>>,
    /// Alive list for the root call.
    root_alive: Vec<u32>,
    /// Marginal gain per element at the current search node.
    gains: Vec<u32>,
    /// Counting histogram over gains for the top-k bound.
    gain_hist: Vec<u32>,
    used_scratch: BitSet,
    greedy_covered: BitSet,
    /// Racing incumbent bound shared across the per-worker engines of
    /// a parallel pass 1; `None` on every sequential solve (and after
    /// [`DominationEngine::reset`]).
    shared_bound: Option<Arc<AtomicUsize>>,
}

impl Default for DominationEngine {
    fn default() -> Self {
        Self::new(BitSet::new(0), &[])
    }
}

impl DominationEngine {
    /// Fresh engine over ground set `0..universe.capacity()` with empty
    /// coverage.
    pub fn new(universe: BitSet, forced: &[u32]) -> Self {
        let n = universe.capacity();
        let mut e = DominationEngine {
            n,
            covers: Vec::new(),
            universe: BitSet::new(0),
            forced: Vec::new(),
            forced_set: BitSet::new(0),
            initial_covered: BitSet::new(0),
            any_cover: BitSet::new(0),
            dominators: Vec::new(),
            dominator_sets: Vec::new(),
            cover_sizes: Vec::new(),
            max_cover: 0,
            packing_order: Vec::new(),
            probe_pool: Vec::new(),
            live_pool: Vec::new(),
            cand_pool: Vec::new(),
            alive_pool: Vec::new(),
            root_alive: Vec::new(),
            gains: vec![0; n],
            gain_hist: Vec::new(),
            used_scratch: BitSet::new(0),
            greedy_covered: BitSet::new(0),
            shared_bound: None,
        };
        e.reset(universe, forced);
        e
    }

    /// Builds the engine from a one-shot [`DominationInstance`] — the
    /// rebuild path the seed solver took at every `h`, kept as the
    /// reference (and bench baseline) for the incremental path.
    pub fn from_instance(inst: &DominationInstance) -> Self {
        let mut e = Self::new(inst.universe.clone(), &inst.forced);
        for (s, c) in inst.covers.iter().enumerate() {
            for v in c.iter() {
                e.add_pair(s as u32, v);
            }
        }
        e
    }

    /// Re-targets the engine at a new instance family, recycling the
    /// allocations grow-only: per-element buffers keep their word/heap
    /// storage across *any* size change (consecutive dynamics views
    /// almost never share a size, so the old same-`n`-only fast path
    /// reallocated ~3n buffers per solve), and only the per-depth
    /// pools — whose bitsets are pinned to the old capacity — are
    /// dropped when `n` changes, bounded by the previous search depth.
    pub fn reset(&mut self, universe: BitSet, forced: &[u32]) {
        let n = universe.capacity();
        if n != self.n {
            self.probe_pool.clear();
            self.live_pool.clear();
            self.cand_pool.clear();
            self.alive_pool.clear();
            self.n = n;
        }
        self.covers.truncate(n);
        for c in &mut self.covers {
            c.reset(n);
        }
        self.covers.resize_with(n, || BitSet::new(n));
        self.dominators.truncate(n);
        for d in &mut self.dominators {
            d.clear();
        }
        self.dominators.resize_with(n, Vec::new);
        self.dominator_sets.truncate(n);
        for d in &mut self.dominator_sets {
            d.reset(n);
        }
        self.dominator_sets.resize_with(n, || BitSet::new(n));
        self.cover_sizes.clear();
        self.cover_sizes.resize(n, 0);
        self.gains.clear();
        self.gains.resize(n, 0);
        self.forced_set.reset(n);
        self.initial_covered.reset(n);
        self.any_cover.reset(n);
        self.used_scratch.reset(n);
        self.greedy_covered.reset(n);
        self.max_cover = 0;
        self.shared_bound = None;
        self.universe = universe;
        self.forced.clear();
        self.forced.extend_from_slice(forced);
        for &f in forced {
            self.forced_set.insert(f);
        }
    }

    /// Records that choosing `s` dominates `v`, updating the dominator
    /// transpose, the feasibility union, and (for forced `s`) the free
    /// initial coverage. Idempotent; coverage only ever grows.
    #[inline]
    pub fn add_pair(&mut self, s: u32, v: u32) {
        if self.covers[s as usize].insert(v) {
            self.any_cover.insert(v);
            if self.universe.contains(v) {
                self.dominators[v as usize].push(s);
                self.dominator_sets[v as usize].insert(s);
                let size = &mut self.cover_sizes[s as usize];
                *size += 1;
                self.max_cover = self.max_cover.max(*size as usize);
            }
            if self.forced_set.contains(s) {
                self.initial_covered.insert(v);
            }
        }
    }

    /// Whether every universe vertex currently has at least one
    /// dominator (maintained incrementally — O(words)).
    pub fn is_feasible(&self) -> bool {
        self.any_cover.is_superset(&self.universe)
    }

    /// Greedy `(1 + ln n)`-approximation over the current coverage:
    /// repeatedly take the element covering the most still-uncovered
    /// universe vertices (ties to the smallest element, as in the
    /// seed). Returns `None` if infeasible.
    pub fn solve_greedy(&mut self) -> Option<Solution> {
        let mut chosen = Vec::new();
        self.greedy_into(&mut chosen).then(|| {
            chosen.sort_unstable();
            chosen
        })
    }

    /// Greedy into a caller-provided vec; returns feasibility. The
    /// chosen elements are in pick order (not sorted).
    fn greedy_into(&mut self, chosen: &mut Vec<u32>) -> bool {
        chosen.clear();
        self.greedy_covered.clone_from(&self.initial_covered);
        while self.greedy_covered.missing_from(&self.universe) > 0 {
            let mut best: Option<(usize, u32)> = None;
            for s in 0..self.n as u32 {
                let gain = self.marginal_gain(s, &self.greedy_covered);
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, s));
                }
            }
            let Some((_, s)) = best else { return false }; // infeasible
            self.greedy_covered.union_with(&self.covers[s as usize]);
            chosen.push(s);
        }
        true
    }

    /// Whether `covers[a] ∩ live ⊆ covers[b] ∩ live`, word-parallel
    /// (`live` = `universe ∖ covered`).
    #[inline]
    fn residual_subset(&self, a: u32, b: u32, live: &BitSet) -> bool {
        self.covers[a as usize]
            .words()
            .iter()
            .zip(self.covers[b as usize].words())
            .zip(live.words())
            .all(|((aw, bw), lw)| aw & lw & !bw == 0)
    }

    /// `|covers[s] ∩ universe ∖ covered|`, word-parallel.
    #[inline]
    fn marginal_gain(&self, s: u32, covered: &BitSet) -> usize {
        let mut gain = 0usize;
        for ((cw, uw), dw) in
            self.covers[s as usize].words().iter().zip(self.universe.words()).zip(covered.words())
        {
            gain += (cw & uw & !dw).count_ones() as usize;
        }
        gain
    }

    /// Greedy solution with provably redundant elements removed — a
    /// tighter incumbent to seed the branch-and-bound with.
    fn greedy_pruned(&mut self) -> Option<Solution> {
        let mut chosen = Vec::new();
        if !self.greedy_into(&mut chosen) {
            return None;
        }
        // Drop any element whose removal keeps the universe covered;
        // later picks first (they have the smallest marginal gains).
        let mut i = chosen.len();
        while i > 0 {
            i -= 1;
            self.greedy_covered.clone_from(&self.initial_covered);
            for (j, &s) in chosen.iter().enumerate() {
                if j != i {
                    self.greedy_covered.union_with(&self.covers[s as usize]);
                }
            }
            if self.greedy_covered.is_superset(&self.universe) {
                chosen.remove(i);
            }
        }
        chosen.sort_unstable();
        Some(chosen)
    }

    /// Root setup shared by the sequential and parallel solvers:
    /// rebuilds the packing order and computes the pruned-greedy
    /// incumbent clamped to `cutoff`. Returns the incumbent solution
    /// (already `None` when it does not beat the cutoff) and the
    /// initial incumbent bound. Deterministic.
    fn prepare_root(&mut self, cutoff: usize) -> (Option<Solution>, usize) {
        // Packing order: few-dominator vertices first makes the greedy
        // packing larger, hence the bound stronger.
        self.packing_order.clear();
        self.packing_order.extend(self.universe.iter());
        let dominators = &self.dominators;
        self.packing_order.sort_unstable_by_key(|&v| dominators[v as usize].len());
        // Pruned-greedy incumbent.
        let mut best = self.greedy_pruned();
        let best_len = best.as_ref().map(|b| b.len()).unwrap_or(usize::MAX).min(cutoff);
        if best.as_ref().is_some_and(|b| b.len() >= cutoff) {
            best = None;
        }
        (best, best_len)
    }

    /// Exact constrained minimum via branch-and-bound over the current
    /// coverage state. Same contract as
    /// [`DominationInstance::solve_exact`]: only solutions with
    /// strictly fewer than `cutoff` extra elements are reported;
    /// `None` if infeasible or nothing beats the cutoff.
    pub fn solve_exact(&mut self, cutoff: usize) -> Option<Solution> {
        if !self.is_feasible() {
            return None;
        }
        let (mut best, mut best_len) = self.prepare_root(cutoff);
        let mut chosen: Vec<u32> = Vec::new();
        self.acquire_depth(0);
        let mut root_covered = std::mem::replace(&mut self.probe_pool[0], BitSet::new(0));
        root_covered.clone_from(&self.initial_covered);
        // Root alive set: every element that covers anything. Children
        // narrow it as marginal gains hit zero (gains only shrink down
        // a path, so a dead element stays dead in the whole subtree).
        let mut root_alive = std::mem::take(&mut self.root_alive);
        root_alive.clear();
        root_alive.extend((0..self.n as u32).filter(|&s| self.cover_sizes[s as usize] > 0));
        self.recurse(1, &root_covered, &root_alive, &mut chosen, &mut best, &mut best_len);
        self.root_alive = root_alive;
        self.probe_pool[0] = root_covered;
        best.map(|mut b| {
            b.sort_unstable();
            b
        })
    }

    /// [`solve_exact`](DominationEngine::solve_exact), fanned out over
    /// the work-stealing pool — **bit-identical output** for any
    /// `workers`, thread count, and steal schedule (`DESIGN.md` §8).
    ///
    /// The root of the branch-and-bound tree is expanded breadth-first
    /// into a canonical frontier of at least `workers · per_worker`
    /// subproblems (§8: an expanded node is replaced *in place* by its
    /// children in branch order, so the frontier enumerates the
    /// sequential DFS's subtrees left to right). Each worker snapshots
    /// the engine once and reuses it across all its subproblems. Two
    /// passes make the race deterministic:
    ///
    /// 1. workers solve the subproblems in any order, sharing one
    ///    atomic incumbent bound — this finds the optimal *cost* `c*`
    ///    as fast as the hardware allows, but which subproblem's
    ///    witness survives depends on the schedule;
    /// 2. the subproblems preceding the first pass-1 witness in
    ///    canonical order are re-solved with the now-tight bound
    ///    `c* + 1`, and the first subtree (in canonical order) that
    ///    contains a cost-`c*` solution supplies its DFS-first witness
    ///    — exactly the solution the sequential search returns.
    ///
    /// `workers ≤ 1` simply delegates to the sequential solver.
    pub fn solve_exact_parallel(
        &mut self,
        cutoff: usize,
        workers: usize,
        per_worker: usize,
    ) -> Option<Solution> {
        if workers <= 1 {
            return self.solve_exact(cutoff);
        }
        if !self.is_feasible() {
            return None;
        }
        let (initial_best, initial_len) = self.prepare_root(cutoff);
        // Root state, then the canonical frontier split.
        self.acquire_depth(0);
        let mut root_covered = std::mem::replace(&mut self.probe_pool[0], BitSet::new(0));
        root_covered.clone_from(&self.initial_covered);
        let mut root_alive = std::mem::take(&mut self.root_alive);
        root_alive.clear();
        root_alive.extend((0..self.n as u32).filter(|&s| self.cover_sizes[s as usize] > 0));
        let root = FrontierNode {
            chosen: Vec::new(),
            covered: root_covered.clone(),
            alive: root_alive.clone(),
        };
        let items = self.expand_frontier(root, initial_len, workers * per_worker.max(1));
        self.root_alive = root_alive;
        self.probe_pool[0] = root_covered;
        // Pass 1: race every subproblem to the optimal cost under a
        // shared bound seeded with the incumbent and any complete
        // solutions the expansion already surfaced.
        let leaf_min = items
            .iter()
            .filter_map(|it| match it {
                FrontierItem::Leaf(sol) => Some(sol.len()),
                FrontierItem::Sub(_) => None,
            })
            .min()
            .unwrap_or(usize::MAX);
        let shared = Arc::new(AtomicUsize::new(initial_len.min(leaf_min)));
        let sub_indices: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, FrontierItem::Sub(_)))
            .map(|(i, _)| i)
            .collect();
        let this: &DominationEngine = self;
        let items_ref = &items;
        let pass1: Vec<(Option<Solution>, usize)> = sub_indices
            .clone()
            .into_par_iter()
            .map_init(
                || {
                    let mut engine = this.clone();
                    engine.shared_bound = Some(shared.clone());
                    engine
                },
                |engine, i| {
                    let FrontierItem::Sub(node) = &items_ref[i] else {
                        unreachable!("sub_indices only holds Sub items")
                    };
                    engine.solve_node(node, shared.load(Ordering::Relaxed))
                },
            )
            .collect();
        let cstar = shared.load(Ordering::Relaxed);
        if cstar >= initial_len {
            // Nothing in the tree beats the root incumbent; the
            // sequential solver would return it unchanged (greedy
            // solutions are already sorted).
            return initial_best;
        }
        let mut known: Vec<Option<Solution>> = vec![None; items.len()];
        // A pass-1 subproblem is *conclusive* unless its racing bound
        // dropped to `c*` mid-run: while the bound exceeds `c*`, the
        // admissible bounds cannot prune a cost-`c*` solution out of
        // being recorded first (the §8 invariance argument, applied to
        // the subtree), so the pass-1 answer is already what a
        // schedule-free solve would return. Only genuinely raced
        // subproblems go to pass 2.
        let mut conclusive = vec![true; items.len()];
        for (&i, (sol, end_bound)) in sub_indices.iter().zip(pass1) {
            conclusive[i] = end_bound > cstar || sol.as_ref().is_some_and(|s| s.len() == cstar);
            known[i] = sol;
        }
        // Canonical selection. A pass-1 result of cost `c*` is
        // necessarily its subtree's DFS-first witness (a worker can
        // only record cost `c*` while the racing bound still exceeds
        // it, so no earlier node of that subtree was bound-pruned out
        // of recording first). Every *inconclusive* item before the
        // first such item may contain an earlier witness that pass 1
        // pruned after the bound tightened, and is re-solved with the
        // tight bound.
        let first_hit = items.iter().enumerate().position(|(i, it)| match it {
            FrontierItem::Leaf(sol) => sol.len() == cstar,
            FrontierItem::Sub(_) => known[i].as_ref().is_some_and(|s| s.len() == cstar),
        });
        let limit = first_hit.unwrap_or(items.len());
        let todo: Vec<usize> = (0..limit)
            .filter(|&i| matches!(items[i], FrontierItem::Sub(_)) && !conclusive[i])
            .collect();
        let pass2: Vec<(usize, Option<Solution>)> = todo
            .into_par_iter()
            .map_init(
                || this.clone(),
                |engine, i| {
                    let FrontierItem::Sub(node) = &items_ref[i] else {
                        unreachable!("todo only holds Sub items")
                    };
                    (i, engine.solve_node(node, cstar + 1).0)
                },
            )
            .collect();
        for (i, sol) in pass2 {
            known[i] = sol;
        }
        let mut selected = None;
        for (i, it) in items.iter().enumerate() {
            let witness = match it {
                FrontierItem::Leaf(sol) => (sol.len() == cstar).then(|| sol.clone()),
                FrontierItem::Sub(_) => known[i].take().filter(|s| s.len() == cstar),
            };
            if let Some(mut sol) = witness {
                sol.sort_unstable();
                selected = Some(sol);
                break;
            }
        }
        Some(selected.expect("an improved shared bound always has a canonical witness"))
    }

    /// Breadth-first expansion of the root into at least `target`
    /// subproblems (or the fully expanded tree, whichever is smaller),
    /// preserving canonical order: every level replaces each
    /// subproblem *in place* by its children in branch order, so the
    /// concatenated DFS orders of the frontier subtrees equal the
    /// sequential solver's DFS order. Pruning uses only the
    /// deterministic root incumbent `initial_len` — never a racing
    /// bound — so the frontier itself is reproducible.
    fn expand_frontier(
        &mut self,
        root: FrontierNode,
        initial_len: usize,
        target: usize,
    ) -> Vec<FrontierItem> {
        let mut items = vec![FrontierItem::Sub(root)];
        loop {
            let subs = items.iter().filter(|it| matches!(it, FrontierItem::Sub(_))).count();
            if subs == 0 || subs >= target {
                return items;
            }
            let mut next = Vec::with_capacity(items.len() * 2);
            for item in items {
                match item {
                    FrontierItem::Leaf(sol) => next.push(FrontierItem::Leaf(sol)),
                    FrontierItem::Sub(node) => self.expand_node(node, initial_len, &mut next),
                }
            }
            // Every level deepens all prefixes by one element, and
            // prefixes are capped by `initial_len`, so this terminates.
            items = next;
        }
    }

    /// Expands one frontier node: appends its children (or its leaf
    /// solution, or nothing when pruned) to `out` in canonical order.
    /// Mirrors [`recurse`](Self::recurse)'s entry checks and
    /// [`prepare_node`](Self::prepare_node) with the static incumbent
    /// bound `initial_len`.
    fn expand_node(&mut self, node: FrontierNode, initial_len: usize, out: &mut Vec<FrontierItem>) {
        self.acquire_depth(1);
        let mut live = std::mem::replace(&mut self.live_pool[1], BitSet::new(0));
        live.assign_difference(&self.universe, &node.covered);
        let uncovered = live.len();
        if uncovered == 0 {
            if node.chosen.len() < initial_len {
                out.push(FrontierItem::Leaf(node.chosen));
            }
            self.live_pool[1] = live;
            return;
        }
        if node.chosen.len() + 1 >= initial_len {
            self.live_pool[1] = live;
            return;
        }
        let need = initial_len - node.chosen.len();
        match self.prepare_node(1, &live, uncovered, &node.alive, need) {
            NodeStep::Pruned => {}
            NodeStep::Terminal(found) => {
                if let Some(s) = found {
                    let mut sol = node.chosen.clone();
                    sol.push(s);
                    out.push(FrontierItem::Leaf(sol));
                }
            }
            NodeStep::Branch => {
                let cands = std::mem::take(&mut self.cand_pool[1]);
                let alive_next = std::mem::take(&mut self.alive_pool[1]);
                for &(_, s) in &cands {
                    let mut covered = node.covered.clone();
                    covered.union_with(&self.covers[s as usize]);
                    let mut chosen = node.chosen.clone();
                    chosen.push(s);
                    out.push(FrontierItem::Sub(FrontierNode {
                        chosen,
                        covered,
                        alive: alive_next.clone(),
                    }));
                }
                self.cand_pool[1] = cands;
                self.alive_pool[1] = alive_next;
            }
        }
        self.live_pool[1] = live;
    }

    /// Solves one frontier subproblem to completion under the
    /// (exclusive) incumbent bound `bound`: returns the subtree's
    /// last-improving — with a tight bound `c* + 1`, therefore
    /// DFS-first optimal — solution (`None` if nothing in the subtree
    /// beats the bound), plus the *final* local bound. The bound is
    /// monotone non-increasing, so every node of this search saw a
    /// bound at least as large as the returned one — which is what
    /// lets pass 2 skip any subproblem whose final bound still
    /// exceeds `c*` (its pass-1 answer is already schedule-free).
    /// Runs on a per-worker engine snapshot; a [`Self::shared_bound`],
    /// when installed (pass 1), both tightens this search and
    /// broadcasts its improvements.
    fn solve_node(&mut self, node: &FrontierNode, bound: usize) -> (Option<Solution>, usize) {
        let mut chosen = node.chosen.clone();
        let mut best = None;
        let mut best_len = bound;
        self.recurse(1, &node.covered, &node.alive, &mut chosen, &mut best, &mut best_len);
        (best, best_len)
    }

    /// Ensures the per-depth scratch pools reach slot `depth`.
    fn acquire_depth(&mut self, depth: usize) {
        while self.probe_pool.len() <= depth {
            self.probe_pool.push(BitSet::new(self.n));
        }
        while self.live_pool.len() <= depth {
            self.live_pool.push(BitSet::new(self.n));
        }
        while self.cand_pool.len() <= depth {
            self.cand_pool.push(Vec::new());
        }
        while self.alive_pool.len() <= depth {
            self.alive_pool.push(Vec::new());
        }
    }

    /// Greedy packing: count uncovered vertices whose dominator sets
    /// are pairwise disjoint — each needs a distinct chosen element.
    fn packing_bound(&mut self, live: &BitSet) -> usize {
        self.used_scratch.clear();
        let mut count = 0usize;
        for i in 0..self.packing_order.len() {
            let v = self.packing_order[i];
            if live.contains(v)
                && self.used_scratch.intersection_len(&self.dominator_sets[v as usize]) == 0
            {
                count += 1;
                self.used_scratch.union_with(&self.dominator_sets[v as usize]);
            }
        }
        count
    }

    /// Packing bound strengthened with the current gains: each packing
    /// vertex needs its *own* element, whose contribution is at most
    /// the best gain among that vertex's dominators; whatever coverage
    /// is still missing costs `⌈deficit / max_gain⌉` more elements.
    /// Strictly dominates both the plain packing bound and the
    /// fractional bound. Requires `self.gains` to be fresh. Early-outs
    /// at `need` (the caller prunes at that point anyway).
    fn packing_gain_bound(
        &mut self,
        live: &BitSet,
        uncovered: usize,
        max_gain: usize,
        need: usize,
    ) -> usize {
        self.used_scratch.clear();
        let mut count = 0usize;
        let mut cap_sum = 0usize;
        for i in 0..self.packing_order.len() {
            let v = self.packing_order[i];
            if live.contains(v)
                && self.used_scratch.intersection_len(&self.dominator_sets[v as usize]) == 0
            {
                count += 1;
                if count >= need {
                    return count;
                }
                let mut best = 0u32;
                for &s in &self.dominators[v as usize] {
                    best = best.max(self.gains[s as usize]);
                }
                cap_sum += best as usize;
                self.used_scratch.union_with(&self.dominator_sets[v as usize]);
            }
        }
        count + uncovered.saturating_sub(cap_sum).div_ceil(max_gain)
    }

    /// Minimum number of elements whose current marginal gains can sum
    /// to `uncovered` — a counting pass over `self.gains` from the
    /// largest gain down. Dominates `⌈uncovered / max_gain⌉`.
    fn topk_gain_bound(&mut self, alive: &[u32], uncovered: usize, max_gain: usize) -> usize {
        self.gain_hist.clear();
        self.gain_hist.resize(max_gain + 1, 0);
        for &s in alive {
            let g = self.gains[s as usize];
            if g > 0 {
                self.gain_hist[(g as usize).min(max_gain)] += 1;
            }
        }
        let mut need = uncovered;
        let mut k = 0usize;
        for g in (1..=max_gain).rev() {
            let cnt = self.gain_hist[g] as usize;
            if cnt == 0 {
                continue;
            }
            let take = cnt.min(need.div_ceil(g));
            k += take;
            need = need.saturating_sub(take * g);
            if need == 0 {
                break;
            }
        }
        debug_assert_eq!(need, 0, "total gain always covers the deficit when feasible");
        k
    }

    /// Publishes a freshly improved incumbent length to the shared
    /// racing bound of a parallel pass 1, if one is installed.
    #[inline]
    fn publish_bound(&self, best_len: usize) {
        if let Some(shared) = &self.shared_bound {
            shared.fetch_min(best_len, Ordering::Relaxed);
        }
    }

    fn recurse(
        &mut self,
        depth: usize,
        covered: &BitSet,
        alive: &[u32],
        chosen: &mut Vec<u32>,
        best: &mut Option<Solution>,
        best_len: &mut usize,
    ) {
        // Cross-worker pruning (parallel pass 1 only): adopt the
        // racing incumbent bound. The bound is monotone decreasing and
        // only ever *tightens* pruning, so relaxed ordering suffices.
        if let Some(shared) = &self.shared_bound {
            let racing = shared.load(Ordering::Relaxed);
            if racing < *best_len {
                *best_len = racing;
            }
        }
        self.acquire_depth(depth);
        // The still-uncovered mask, computed once per node; every
        // bound and the branch selection below read it.
        let mut live = std::mem::replace(&mut self.live_pool[depth], BitSet::new(0));
        live.assign_difference(&self.universe, covered);
        let uncovered = live.len();
        if uncovered == 0 {
            if chosen.len() < *best_len {
                *best_len = chosen.len();
                *best = Some(chosen.clone());
                self.publish_bound(*best_len);
            }
            self.live_pool[depth] = live;
            return;
        }
        // Any completion needs at least one more element.
        if chosen.len() + 1 >= *best_len {
            self.live_pool[depth] = live;
            return;
        }
        self.recurse_at(depth, covered, &live, uncovered, alive, chosen, best, best_len);
        self.live_pool[depth] = live;
    }

    /// The body of a search node past the trivial exits; `live` is
    /// `universe ∖ covered` with `uncovered = |live|` (> 0).
    #[allow(clippy::too_many_arguments)] // internal hot path, split for pool juggling
    fn recurse_at(
        &mut self,
        depth: usize,
        covered: &BitSet,
        live: &BitSet,
        uncovered: usize,
        alive: &[u32],
        chosen: &mut Vec<u32>,
        best: &mut Option<Solution>,
        best_len: &mut usize,
    ) {
        // How many further elements a solution may use and still beat
        // the incumbent (≥ 2 after the entry checks).
        let need = *best_len - chosen.len();
        match self.prepare_node(depth, live, uncovered, alive, need) {
            NodeStep::Pruned => {}
            NodeStep::Terminal(found) => {
                if let Some(s) = found {
                    chosen.push(s);
                    *best_len = chosen.len();
                    *best = Some(chosen.clone());
                    self.publish_bound(*best_len);
                    chosen.pop();
                }
            }
            NodeStep::Branch => {
                let alive_next = std::mem::take(&mut self.alive_pool[depth]);
                let cands = std::mem::take(&mut self.cand_pool[depth]);
                let mut probe = std::mem::replace(&mut self.probe_pool[depth], BitSet::new(0));
                for &(_, s) in &cands {
                    probe.clone_from(covered);
                    probe.union_with(&self.covers[s as usize]);
                    chosen.push(s);
                    self.recurse(depth + 1, &probe, &alive_next, chosen, best, best_len);
                    chosen.pop();
                    // No remaining sibling can beat an incumbent of
                    // `chosen.len() + 1` elements.
                    if *best_len <= chosen.len() + 1 {
                        break;
                    }
                }
                self.probe_pool[depth] = probe;
                self.cand_pool[depth] = cands;
                self.alive_pool[depth] = alive_next;
            }
        }
    }

    /// Everything a search node decides past the trivial exits, with
    /// the incumbent handling left to the caller: lower bounds, the
    /// `need == 2` terminal scan, branch-vertex selection and the
    /// canonical (gain-sorted, subset-dominance-pruned) candidate
    /// order. Shared verbatim between the sequential recursion and the
    /// parallel solver's frontier expansion, so both walk the *same*
    /// tree in the same order — the heart of the §8 determinism
    /// argument.
    fn prepare_node(
        &mut self,
        depth: usize,
        live: &BitSet,
        uncovered: usize,
        alive: &[u32],
        need: usize,
    ) -> NodeStep {
        // Cheap static fractional bound first (free).
        let frac = uncovered.div_ceil(self.max_cover.max(1));
        if frac >= need {
            return NodeStep::Pruned;
        }
        // Dynamic bounds where they can pay: on large ground sets (the
        // word-parallel gain sweep amortises) or when `uncovered`
        // spans several maximum covers (deep subtree). Residual gains
        // shrink as coverage grows, so these keep tightening while the
        // static bound stays put; on the tiny views of the dynamics
        // hot path they would be pure overhead per node, so those keep
        // the seed's static pair instead.
        let dynamic = self.n > 64 || uncovered > self.max_cover;
        let mut alive_next = std::mem::take(&mut self.alive_pool[depth]);
        alive_next.clear();
        if dynamic {
            // Gain sweep over the parent's alive list only — dead
            // elements stay dead in the whole subtree.
            let mut max_gain = 0u32;
            for &s in alive {
                let gain = self.covers[s as usize].intersection_len(live) as u32;
                self.gains[s as usize] = gain;
                if gain > 0 {
                    alive_next.push(s);
                    max_gain = max_gain.max(gain);
                }
            }
            if max_gain == 0 {
                // Unreachable for feasible instances (covered only
                // grows), but a cheap guard beats a debug-only
                // invariant here.
                self.alive_pool[depth] = alive_next;
                return NodeStep::Pruned;
            }
            let gain_bound = self.topk_gain_bound(&alive_next, uncovered, max_gain as usize);
            if gain_bound >= need {
                self.alive_pool[depth] = alive_next;
                return NodeStep::Pruned;
            }
            if self.packing_gain_bound(live, uncovered, max_gain as usize, need) >= need {
                self.alive_pool[depth] = alive_next;
                return NodeStep::Pruned;
            }
        } else {
            alive_next.extend_from_slice(alive);
            if frac.max(self.packing_bound(live)) >= need {
                self.alive_pool[depth] = alive_next;
                return NodeStep::Pruned;
            }
        }
        // Branch on the uncovered vertex with the fewest dominators
        // (fail-first).
        let mut branch_v: Option<(usize, u32)> = None;
        for v in live.iter() {
            let deg = self.dominators[v as usize].len();
            if branch_v.is_none_or(|(bd, _)| deg < bd) {
                branch_v = Some((deg, v));
                if deg <= 1 {
                    break;
                }
            }
        }
        let (_, v) = branch_v.expect("uncovered > 0 implies an uncovered vertex exists");
        // Candidates: the dominators of `v`, best current marginal
        // gain first. Every dominator of an uncovered vertex is alive,
        // so on the dynamic path `self.gains` is fresh for all of
        // them; the static path computes the few gains directly.
        let mut cands = std::mem::take(&mut self.cand_pool[depth]);
        cands.clear();
        if dynamic {
            cands.extend(self.dominators[v as usize].iter().map(|&s| (self.gains[s as usize], s)));
        } else {
            cands.extend(
                self.dominators[v as usize]
                    .iter()
                    .map(|&s| (self.covers[s as usize].intersection_len(live) as u32, s)),
            );
        }
        cands.sort_unstable_by(|a, b| b.cmp(a));
        // Subset-dominance elimination: a candidate whose residual
        // coverage is contained in an earlier (≥-gain) candidate's can
        // be swapped for that candidate in any solution without
        // growing it, so its branch is redundant. Cuts the effective
        // branching factor on dense instances for O(deg²·words).
        let mut kept = 0usize;
        for i in 0..cands.len() {
            let (gi, si) = cands[i];
            let dominated = (0..kept).any(|j| self.residual_subset(si, cands[j].1, live));
            if !dominated {
                cands[kept] = (gi, si);
                kept += 1;
            }
        }
        cands.truncate(kept);
        // Terminal-level shortcut: when only a single further element
        // can beat the incumbent, that element must cover *all*
        // uncovered vertices by itself — and it must dominate `v`, so
        // it is among `cands`. A scan of the gains replaces the
        // recursion; picking the first full-gain candidate in sorted
        // order matches exactly what the recursion would have
        // recorded.
        if need == 2 {
            let found = cands.iter().find(|&&(g, _)| g as usize == uncovered).map(|&(_, s)| s);
            self.cand_pool[depth] = cands;
            self.alive_pool[depth] = alive_next;
            return NodeStep::Terminal(found);
        }
        self.cand_pool[depth] = cands;
        self.alive_pool[depth] = alive_next;
        NodeStep::Branch
    }
}

/// One unexpanded subproblem of the parallel solver's root frontier:
/// a canonical branch prefix with its covered set and alive list. The
/// position of a node in the frontier `Vec` *is* its canonical rank —
/// frontier order enumerates the sequential DFS's subtrees left to
/// right.
#[derive(Debug, Clone)]
struct FrontierNode {
    chosen: Vec<u32>,
    covered: BitSet,
    alive: Vec<u32>,
}

/// A root-frontier entry: either a subproblem to hand to a worker or
/// a complete solution already discovered during expansion.
#[derive(Debug, Clone)]
enum FrontierItem {
    Sub(FrontierNode),
    Leaf(Vec<u32>),
}

/// What [`DominationEngine::prepare_node`] decided for a search node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeStep {
    /// A lower bound proves no completion can beat the incumbent.
    Pruned,
    /// `need == 2` terminal level: the only possible improvement is a
    /// single element covering every uncovered vertex; the payload is
    /// the first such candidate in canonical order, if any.
    Terminal(Option<u32>),
    /// Branch over `cand_pool[depth]` in canonical order; the child
    /// alive list is in `alive_pool[depth]`.
    Branch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::{generators, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph_instance(g: &Graph, forced: Vec<u32>) -> DominationInstance {
        DominationInstance::closed_neighborhoods(g, forced)
    }

    #[test]
    fn engine_matches_instance_solver() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        for trial in 0..20 {
            let g = generators::gnp(13, 0.22, &mut rng).unwrap();
            let inst = graph_instance(&g, if trial % 3 == 0 { vec![1] } else { vec![] });
            let via_instance = inst.solve_exact(usize::MAX).map(|s| s.len());
            let via_engine =
                DominationEngine::from_instance(&inst).solve_exact(usize::MAX).map(|s| s.len());
            assert_eq!(via_instance, via_engine, "trial {trial}");
        }
    }

    #[test]
    fn incremental_growth_matches_rebuild_at_every_radius() {
        // Grow coverage ring by ring (exactly the best-response access
        // pattern) and check each intermediate solve against a from-
        // scratch instance of the same coverage.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let g = generators::gnp_connected(16, 0.18, 300, &mut rng).unwrap();
        let n = g.node_count();
        let csr = ncg_graph::CsrGraph::from_graph(&g);
        let mut buf = ncg_graph::bfs::DistanceBuffer::with_capacity(n);
        let dist: Vec<Vec<u32>> = (0..n as u32)
            .map(|s| {
                csr.bfs(s, &mut buf);
                buf.distances().to_vec()
            })
            .collect();
        let mut engine = DominationEngine::new(BitSet::full(n), &[2]);
        for r in 0..4u32 {
            for s in 0..n as u32 {
                for v in 0..n as u32 {
                    if dist[s as usize][v as usize] == r {
                        engine.add_pair(s, v);
                    }
                }
            }
            let covers: Vec<BitSet> = (0..n as u32)
                .map(|s| {
                    BitSet::from_elems(
                        n,
                        (0..n as u32).filter(|&v| dist[s as usize][v as usize] <= r),
                    )
                })
                .collect();
            let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![2] };
            assert_eq!(
                engine.solve_exact(usize::MAX).map(|s| s.len()),
                inst.solve_exact(usize::MAX).map(|s| s.len()),
                "radius {r}"
            );
            assert_eq!(
                engine.solve_greedy().map(|s| s.len()),
                inst.solve_greedy().map(|s| s.len()),
                "greedy radius {r}"
            );
        }
    }

    #[test]
    fn reset_recycles_without_stale_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let g1 = generators::gnp(12, 0.3, &mut rng).unwrap();
        let g2 = generators::gnp(12, 0.2, &mut rng).unwrap();
        let i1 = graph_instance(&g1, vec![]);
        let i2 = graph_instance(&g2, vec![0]);
        let mut engine = DominationEngine::from_instance(&i1);
        let first = engine.solve_exact(usize::MAX);
        assert_eq!(first, i1.solve_exact(usize::MAX));
        // Reuse for a different instance of the same size.
        engine.reset(i2.universe.clone(), &i2.forced);
        for (s, c) in i2.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(
            engine.solve_exact(usize::MAX).map(|s| s.len()),
            i2.solve_exact(usize::MAX).map(|s| s.len())
        );
        // And for a different size.
        let g3 = generators::path(7);
        let i3 = graph_instance(&g3, vec![]);
        engine.reset(i3.universe.clone(), &i3.forced);
        for (s, c) in i3.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(engine.solve_exact(usize::MAX).unwrap().len(), 3);
        // And growing again after the shrink (the grow-only reuse
        // path re-targets the recycled word storage).
        let g4 = generators::cycle(21);
        let i4 = graph_instance(&g4, vec![]);
        engine.reset(i4.universe.clone(), &i4.forced);
        for (s, c) in i4.covers.iter().enumerate() {
            for v in c.iter() {
                engine.add_pair(s as u32, v);
            }
        }
        assert_eq!(
            engine.solve_exact(usize::MAX).map(|s| s.len()),
            i4.solve_exact(usize::MAX).map(|s| s.len())
        );
    }

    #[test]
    fn infeasible_until_coverage_arrives() {
        let mut engine = DominationEngine::new(BitSet::full(3), &[]);
        assert!(!engine.is_feasible());
        assert_eq!(engine.solve_exact(usize::MAX), None);
        assert_eq!(engine.solve_greedy(), None);
        for v in 0..3 {
            engine.add_pair(0, v);
        }
        assert!(engine.is_feasible());
        assert_eq!(engine.solve_exact(usize::MAX).unwrap(), vec![0]);
    }

    #[test]
    fn cutoff_contract_matches_instance_solver() {
        let inst = graph_instance(&generators::path(9), vec![]);
        let mut engine = DominationEngine::from_instance(&inst);
        assert_eq!(engine.solve_exact(3), None, "optimum 3 is not < 3");
        assert_eq!(engine.solve_exact(4).unwrap().len(), 3);
        assert_eq!(engine.solve_exact(0), None);
    }

    #[test]
    fn parallel_solver_is_bit_identical_to_sequential() {
        // Random instances with and without forced elements, solved
        // sequentially and with every worker/frontier configuration:
        // the *full solution* (not just its size) must match.
        let mut rng = ChaCha8Rng::seed_from_u64(94);
        for trial in 0..12 {
            let g = generators::gnp(22, 0.12 + 0.02 * (trial % 5) as f64, &mut rng).unwrap();
            let forced = if trial % 3 == 0 { vec![1] } else { vec![] };
            let inst = graph_instance(&g, forced);
            let expected = DominationEngine::from_instance(&inst).solve_exact(usize::MAX);
            for (workers, per_worker) in [(2usize, 1usize), (2, 4), (4, 2), (7, 3)] {
                let got = DominationEngine::from_instance(&inst).solve_exact_parallel(
                    usize::MAX,
                    workers,
                    per_worker,
                );
                assert_eq!(got, expected, "trial {trial}, workers {workers}·{per_worker}");
            }
        }
    }

    #[test]
    fn parallel_solver_respects_cutoff_and_infeasibility() {
        // Path: optimum 3. Cutoffs at, above, and far below it.
        let inst = graph_instance(&generators::path(9), vec![]);
        let mut engine = DominationEngine::from_instance(&inst);
        assert_eq!(engine.solve_exact_parallel(3, 4, 2), None);
        assert_eq!(engine.solve_exact_parallel(4, 4, 2), engine.solve_exact(4));
        assert_eq!(engine.solve_exact_parallel(0, 4, 2), None);
        // Infeasible: universe vertex nobody covers.
        let mut empty = DominationEngine::new(BitSet::full(3), &[]);
        empty.add_pair(0, 0);
        assert_eq!(empty.solve_exact_parallel(usize::MAX, 4, 2), None);
        // Trivial: empty universe needs nothing.
        let mut trivial = DominationEngine::new(BitSet::new(2), &[]);
        assert_eq!(trivial.solve_exact_parallel(usize::MAX, 4, 2), Some(vec![]));
    }

    #[test]
    fn parallel_solver_single_worker_delegates() {
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        let g = generators::gnp(16, 0.2, &mut rng).unwrap();
        let inst = graph_instance(&g, vec![]);
        let mut a = DominationEngine::from_instance(&inst);
        let mut b = DominationEngine::from_instance(&inst);
        assert_eq!(a.solve_exact_parallel(usize::MAX, 1, 8), b.solve_exact(usize::MAX));
    }

    #[test]
    fn forced_coverage_is_free_and_never_rebought() {
        let inst = graph_instance(&generators::path(9), vec![0]);
        let mut engine = DominationEngine::from_instance(&inst);
        let extra = engine.solve_exact(usize::MAX).unwrap();
        assert!(extra.len() <= 3);
        assert!(!extra.contains(&0));
    }
}
