//! SumNCG best response.
//!
//! Computing a best response in SumNCG is NP-hard for every `k ≥ 2`
//! and `1 < α < 2` (Section 2 of the paper, via MINIMUM DOMINATING
//! SET), and — unlike MaxNCG — the paper gives no practical reduction;
//! its experiments are restricted to MaxNCG for exactly this reason.
//! We go further than the paper here:
//!
//! * [`Mode::Exact`] runs the include/exclude branch-and-bound of
//!   [`SumEngine`](crate::sum_engine::SumEngine) on every view — no
//!   candidate cap, exact on the ~100-node full-knowledge views of the
//!   paper's dynamics (the seed-era 14-candidate enumeration limit is
//!   gone). Large views fan out over the work-stealing pool per the
//!   scratch's [`ParallelPolicy`](crate::ParallelPolicy), with
//!   bit-identical results for any worker count.
//! * [`Mode::Greedy`] is deterministic hill climbing (best improving
//!   add / drop / swap, repeated to a fixed point) — kept as the
//!   heuristic ablation arm and as the proptest foil the exact path
//!   must never lose to.
//!
//! Both respect Proposition 2.2's frontier rule through
//! [`ncg_core::deviation::evaluate_sum`]: the engine prunes with the
//! same per-vertex [`sum_source_limit`](ncg_core::deviation::sum_source_limit)
//! the evaluator enforces, and every returned deviation is re-scored
//! through [`evaluate_total`], so the evaluator stays authoritative.

use ncg_core::deviation::evaluate_total;
use ncg_core::equilibrium::Deviation;
use ncg_core::{GameSpec, MoveRulePolicy, PlayerView};

use crate::front::hill_climb;
use crate::{Mode, SolverScratch, ADAPTIVE_FLOOR};

/// Computes a SumNCG best response: the exact branch-and-bound in
/// [`Mode::Exact`], hill climbing in [`Mode::Greedy`]. Never returns
/// something worse than the current strategy.
///
/// Creates a throwaway [`SolverScratch`] per call; hot loops should
/// hold one and call [`sum_best_response_with`] instead.
pub fn sum_best_response(spec: &GameSpec, view: &PlayerView, mode: Mode) -> Deviation {
    sum_best_response_with(spec, view, mode, &mut SolverScratch::new())
}

/// [`sum_best_response`] with caller-provided scratch: the BFS rows,
/// per-depth pools and node buffers of the branch-and-bound (and the
/// evaluation buffers of the hill climb) are reused across calls, so
/// dynamics rounds warm-restart the solver exactly like `max_br`.
///
/// The scratch's [`ParallelPolicy`](crate::ParallelPolicy) governs
/// when an exact solve fans out over the work-stealing pool; results
/// are bit-identical under any policy and worker count (the canonical
/// frontier fold of [`SumEngine::solve_parallel`](crate::sum_engine::SumEngine::solve_parallel)).
pub fn sum_best_response_with(
    spec: &GameSpec,
    view: &PlayerView,
    mode: Mode,
    scratch: &mut SolverScratch,
) -> Deviation {
    debug_assert!(
        spec.edge_cost.is_uniform() && spec.move_rule == MoveRulePolicy::AnySubset,
        "the sum engine's count-based α·t pricing is only sound for \
         uniform edge costs and subset moves; other scenarios must go \
         through front::best_response_with"
    );
    if view.len() <= 1 {
        return Deviation { strategy_local: Vec::new(), total_cost: spec.total_cost(0, Some(0)) };
    }
    if mode == Mode::Exact {
        return branch_and_bound(spec, view, scratch);
    }
    hill_climb(spec, view, &mut scratch.eval)
}

/// The exact path: prepare the scratch's [`SumEngine`](crate::sum_engine::SumEngine)
/// on this view (warm restart), solve — parallel when the policy says
/// the view is big enough — and re-score the winner through
/// [`evaluate_total`] so the returned cost is, bit for bit, what the
/// evaluator assigns the strategy ([`BestResponder`](ncg_core::equilibrium::BestResponder)'s
/// contract).
fn branch_and_bound(spec: &GameSpec, view: &PlayerView, scratch: &mut SolverScratch) -> Deviation {
    scratch.sum.prepare(spec, view);
    let workers = scratch.parallel.workers_for(view.len(), &scratch.estimate);
    let solve_start = std::time::Instant::now();
    let inc = if workers > 1 {
        scratch.sum.solve_parallel(workers, scratch.parallel.per_worker)
    } else {
        scratch.sum.solve()
    };
    if workers <= 1 && view.len() >= ADAPTIVE_FLOOR {
        scratch.estimate.record(view.len(), solve_start.elapsed().as_nanos() as u64);
    }
    let total_cost = evaluate_total(spec, view, &inc.strategy, &mut scratch.eval);
    debug_assert_eq!(
        total_cost.to_bits(),
        inc.cost.to_bits(),
        "engine cost must agree with evaluate_sum on the winning strategy"
    );
    Deviation { strategy_local: inc.strategy, total_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::deviation::current_total;
    use ncg_core::equilibrium::best_response_exhaustive;
    use ncg_core::GameState;
    use ncg_graph::NodeId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_matches_exhaustive_on_small_views() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for _ in 0..5 {
            let g = ncg_graph::generators::gnp_connected(12, 0.25, 100, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for alpha in [0.5, 1.5, 3.0] {
                let spec = GameSpec::sum(alpha, 2);
                for u in 0..state.n() as NodeId {
                    let view = PlayerView::build(&state, u, spec.k);
                    let a = sum_best_response(&spec, &view, Mode::Exact);
                    let b = best_response_exhaustive(&spec, &view).unwrap();
                    assert_eq!(a.strategy_local, b.strategy_local, "u={u} α={alpha}");
                    assert!((a.total_cost - b.total_cost).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn exact_beats_or_ties_hill_climb_beyond_the_old_cap() {
        // 30-node full-knowledge views: 29 candidates, far past the
        // removed 14-candidate enumeration limit. Exact must never be
        // worse than either the heuristic or standing pat.
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let g = ncg_graph::generators::gnp_connected(30, 0.12, 100, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        for alpha in [0.4, 1.2, 3.5] {
            let spec = GameSpec::sum(alpha, 1000);
            for u in (0..state.n() as NodeId).step_by(5) {
                let view = PlayerView::build(&state, u, spec.k);
                let exact = sum_best_response(&spec, &view, Mode::Exact);
                let greedy = sum_best_response(&spec, &view, Mode::Greedy);
                assert!(
                    exact.total_cost <= greedy.total_cost + ncg_core::EPS,
                    "u={u} α={alpha}: exact {} vs greedy {}",
                    exact.total_cost,
                    greedy.total_cost,
                );
                assert!(exact.total_cost <= current_total(&spec, &view) + ncg_core::EPS);
            }
        }
    }

    #[test]
    fn hill_climb_improves_on_bad_profiles() {
        // Path with tiny α under Sum: ends should buy shortcuts. Use a
        // path long enough that the view exceeds nothing (full view)
        // and force the heuristic path by using Greedy mode.
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); 12];
        for (i, sigma) in strategies.iter_mut().enumerate().take(11) {
            sigma.push((i + 1) as NodeId);
        }
        let state = GameState::from_strategies(12, strategies);
        let spec = GameSpec::sum(0.5, 100);
        let view = PlayerView::build(&state, 0, spec.k);
        let d = sum_best_response(&spec, &view, Mode::Greedy);
        assert!(GameSpec::strictly_better(d.total_cost, current_total(&spec, &view)));
    }

    #[test]
    fn hill_climb_never_worse_than_current() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..5 {
            let g = ncg_graph::generators::gnp_connected(30, 0.12, 100, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for alpha in [0.3, 1.0, 4.0] {
                for k in [2u32, 1000] {
                    let spec = GameSpec::sum(alpha, k);
                    for u in (0..state.n() as NodeId).step_by(7) {
                        let view = PlayerView::build(&state, u, spec.k);
                        let d = sum_best_response(&spec, &view, Mode::Greedy);
                        assert!(d.total_cost <= current_total(&spec, &view) + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn respects_frontier_rule() {
        // Star (0 owns all) + pendant chain; player 0 with k = 1 must
        // not drop any frontier leaf.
        let state = GameState::from_strategies(
            6,
            vec![vec![1, 2, 3, 4], vec![5], vec![], vec![], vec![], vec![]],
        );
        let spec = GameSpec::sum(10.0, 1);
        let view = PlayerView::build(&state, 0, 1);
        let d = sum_best_response(&spec, &view, Mode::Exact);
        // Even at α = 10, dropping a frontier vertex is forbidden, so
        // the strategy keeps all four purchases.
        assert_eq!(d.strategy_local.len(), 4);
    }

    #[test]
    fn isolated_player() {
        let state = GameState::new(2);
        let view = PlayerView::build(&state, 0, 3);
        let d = sum_best_response(&GameSpec::sum(1.0, 3), &view, Mode::Exact);
        assert!(d.strategy_local.is_empty());
        assert_eq!(d.total_cost, 0.0);
    }
}
