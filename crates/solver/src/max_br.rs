//! Exact MaxNCG best response via the Section 5.3 reduction.
//!
//! To find player `u`'s best response inside her view `H`:
//!
//! 1. remove `u`; let `forced` be the players owning an edge to `u`
//!    (those edges survive any move and cost her nothing);
//! 2. guess her post-move eccentricity `h`; her strategy `σ'` achieves
//!    eccentricity `≤ h` iff `σ' ∪ forced` dominates the
//!    `(h−1)`-th power of `H ∖ {u}` — equivalently, every other vertex
//!    is within distance `h−1` of `σ' ∪ forced` in `H ∖ {u}`;
//! 3. solve the constrained minimum dominating set for each `h` and
//!    take the best `α·|σ'| + h`.
//!
//! The paper solved step 3 with Gurobi; we use the exact
//! branch-and-bound of [`crate::engine`] (see DESIGN.md §4). A greedy
//! variant backs the ablation study.
//!
//! Because the coverage sets of consecutive guesses are nested
//! (`covers[s]` is the radius-`(h−1)` ball around `s`), the whole
//! per-`h` loop drives one persistent
//! [`DominationEngine`](crate::engine::DominationEngine): the
//! distance-bounded per-source BFS orders are computed once, and each
//! guess merely advances a cursor per source, feeding the new
//! distance-`(h−1)` pairs into the engine (`DESIGN.md` §4.3). The seed
//! implementation cloned every coverage set and rebuilt the dominator
//! transpose at every `h`.

use ncg_core::deviation::{current_total, evaluate_max};
use ncg_core::equilibrium::Deviation;
use ncg_core::{GameSpec, MoveRulePolicy, PlayerView};
use ncg_graph::{CsrGraph, NodeId};

use crate::bitset::BitSet;
use crate::bound::purchase_cutoff;
use crate::{Mode, SolverScratch, ADAPTIVE_FLOOR};

/// Computes the MaxNCG best response for `view` under `spec`.
///
/// With [`Mode::Exact`] the result is an optimal strategy (ties broken
/// toward fewer edges, then lexicographically); with [`Mode::Greedy`]
/// the dominating sets are greedy approximations, so the result is a
/// valid but possibly suboptimal improving move — never worse than the
/// current strategy.
///
/// Creates a throwaway [`SolverScratch`] per call; hot loops should
/// hold one and call [`max_best_response_with`] instead.
pub fn max_best_response(spec: &GameSpec, view: &PlayerView, mode: Mode) -> Deviation {
    max_best_response_with(spec, view, mode, &mut SolverScratch::new())
}

/// [`max_best_response`] with caller-provided scratch: after warm-up,
/// repeated calls (per-round dynamics, LKE sweeps) reuse the BFS
/// buffers, the flattened APSP orders, and the incremental domination
/// engine across views.
pub fn max_best_response_with(
    spec: &GameSpec,
    view: &PlayerView,
    mode: Mode,
    scratch: &mut SolverScratch,
) -> Deviation {
    debug_assert!(
        spec.edge_cost.is_uniform() && spec.move_rule == MoveRulePolicy::AnySubset,
        "the max engine's ⌈slack/α⌉ cutoff is only sound for uniform \
         edge costs and subset moves; other scenarios must go through \
         front::best_response_with"
    );
    let n_local = view.len();
    let mut best =
        Deviation { strategy_local: view.purchases.clone(), total_cost: current_total(spec, view) };
    if n_local <= 1 {
        return Deviation { strategy_local: Vec::new(), total_cost: spec.total_cost(0, Some(0)) };
    }
    // Eccentricity guesses at or above the current best total cost can
    // never win (any strategy with eccentricity h costs at least h),
    // and eccentricities in H' never exceed |H| — so both the guess
    // loop and the BFS sweep below are bounded by `h_cap`.
    let h_cap = largest_useful_h(best.total_cost, n_local);
    if h_cap == 0 {
        return best;
    }
    // Distance-bounded per-source sweep of H ∖ {center}, recording the
    // BFS visit orders: coverage growth below is pure cursor
    // advancement over these.
    sweep_minus_center(scratch, view, h_cap - 1);
    // Universe: every vertex except the center.
    let mut universe = BitSet::full(n_local);
    universe.remove(view.center);
    scratch.engine.reset(universe, &view.incoming);
    // One fan-out decision per view (not per guess): the adaptive
    // policy consults the measured per-node solve estimate, and the
    // sequential path below feeds it after the loop.
    let workers = scratch.parallel.workers_for(n_local, &scratch.estimate);
    let solve_start = std::time::Instant::now();
    for h in 1..=h_cap {
        if h as f64 >= best.total_cost - ncg_core::EPS {
            break;
        }
        // Grow coverage to radius h−1: feed pairs at distance exactly
        // h−1 to the engine (each source's cursor has already consumed
        // everything closer).
        grow_covers_to(scratch, h - 1);
        // Only solutions with α·extra + h < best are interesting
        // (shared cutoff arithmetic: crate::bound).
        let cutoff = purchase_cutoff(best.total_cost, h as f64, spec.alpha);
        if cutoff == 0 {
            continue;
        }
        let solution = match mode {
            // Large views fan the branch-and-bound out over the
            // work-stealing pool per the scratch's policy; the
            // two-pass canonical rule keeps the result bit-identical
            // to the sequential solve (DESIGN.md §8).
            Mode::Exact if workers > 1 => {
                scratch.engine.solve_exact_parallel(cutoff, workers, scratch.parallel.per_worker)
            }
            Mode::Exact => scratch.engine.solve_exact(cutoff),
            Mode::Greedy => scratch.engine.solve_greedy().filter(|s| s.len() < cutoff),
        };
        let Some(strategy) = solution else { continue };
        // `strategy` is already sorted with forced elements excluded.
        debug_assert!(strategy.iter().all(|s| !view.incoming.contains(s)));
        // Re-evaluate exactly (the true eccentricity may be < h).
        let eval = evaluate_max(view, &strategy, &mut scratch.eval);
        let cost = spec.total_cost(strategy.len(), eval.usage());
        if is_better(spec, &strategy, cost, &best) {
            best = Deviation { strategy_local: strategy, total_cost: cost };
        }
    }
    if workers <= 1 && mode == Mode::Exact && n_local >= ADAPTIVE_FLOOR {
        scratch.estimate.record(n_local, solve_start.elapsed().as_nanos() as u64);
    }
    best
}

/// The *seed* best-response loop, kept verbatim as the reference
/// baseline: all-pairs BFS rows, then one freshly cloned
/// [`DominationInstance`](crate::dominating::DominationInstance) per
/// eccentricity guess. Returns the optimal total cost only.
///
/// [`max_best_response`] must be cost-identical to this — the parity
/// proptest asserts it, and the `er100_full_view_rebuild` bench
/// measures the gap the incremental engine closes. Not for production
/// use.
pub fn max_best_response_cost_rebuild(spec: &GameSpec, view: &PlayerView) -> f64 {
    use crate::dominating::DominationInstance;
    use ncg_core::deviation::EvalScratch;
    use ncg_graph::bfs::DistanceBuffer;

    let n_local = view.len();
    let mut best_cost = current_total(spec, view);
    if n_local <= 1 {
        return spec.total_cost(0, Some(0));
    }
    let csr = CsrGraph::from_graph(&view.graph_minus_center);
    let mut buf = DistanceBuffer::with_capacity(n_local);
    let dist: Vec<Vec<u32>> = (0..n_local as NodeId)
        .map(|s| {
            if s == view.center {
                vec![ncg_graph::INFINITY; n_local]
            } else {
                csr.bfs(s, &mut buf);
                buf.distances().to_vec()
            }
        })
        .collect();
    let mut universe = BitSet::full(n_local);
    universe.remove(view.center);
    let mut covers: Vec<BitSet> = vec![BitSet::new(n_local); n_local];
    let mut scratch = EvalScratch::new();
    for h in 1..=n_local as u32 {
        if h as f64 >= best_cost - ncg_core::EPS {
            break;
        }
        let r = h - 1;
        for s in 0..n_local {
            if s == view.center as usize {
                continue;
            }
            for v in 0..n_local as u32 {
                if v != view.center && dist[s][v as usize] == r {
                    covers[s].insert(v);
                }
            }
        }
        let inst = DominationInstance {
            covers: covers.clone(),
            universe: universe.clone(),
            forced: view.incoming.clone(),
        };
        let cutoff = purchase_cutoff(best_cost, h as f64, spec.alpha);
        if cutoff == 0 {
            continue;
        }
        let Some(extra) = inst.solve_exact(cutoff) else { continue };
        let eval = evaluate_max(view, &extra, &mut scratch);
        let cost = spec.total_cost(extra.len(), eval.usage());
        if GameSpec::strictly_better(cost, best_cost) {
            best_cost = cost;
        }
    }
    best_cost
}

/// Largest `h` the guess loop can enter: `h < total_cost − ε`, capped
/// by the view size.
fn largest_useful_h(total_cost: f64, n_local: usize) -> u32 {
    let m = (total_cost - ncg_core::EPS).ceil() - 1.0;
    if m <= 0.0 {
        0
    } else if m >= n_local as f64 {
        n_local as u32
    } else {
        m as u32
    }
}

fn is_better(_spec: &GameSpec, strategy: &[NodeId], cost: f64, best: &Deviation) -> bool {
    GameSpec::strictly_better(cost, best.total_cost)
        || ((cost - best.total_cost).abs() <= ncg_core::EPS
            && (strategy.len() < best.strategy_local.len()
                || (strategy.len() == best.strategy_local.len()
                    && *strategy < best.strategy_local[..])))
}

/// Bounded per-source BFS on `view.graph_minus_center`, recording each
/// source's visit order (non-decreasing distance) into the scratch's
/// flat arrays. The center is skipped as a source (it cannot be
/// bought) and never appears as a target (it is detached in
/// `H ∖ {center}`).
///
/// Runs on a frozen [`CsrGraph`] through the same batched frontier
/// kernel as view extraction (`ncg_graph::bfs`): the reduction sweeps
/// the whole adjacency once per source, which is exactly the access
/// pattern the contiguous layout is for.
fn sweep_minus_center(scratch: &mut SolverScratch, view: &PlayerView, limit: u32) {
    let n = view.len();
    let csr = CsrGraph::from_graph(&view.graph_minus_center);
    scratch.ord_node.clear();
    scratch.ord_dist.clear();
    scratch.offsets.clear();
    scratch.offsets.push(0);
    for s in 0..n as NodeId {
        if s != view.center {
            csr.bfs_bounded(s, limit, &mut scratch.buf);
            for &v in scratch.buf.visited() {
                scratch.ord_node.push(v);
                scratch.ord_dist.push(scratch.buf.dist(v));
            }
        }
        scratch.offsets.push(scratch.ord_node.len());
    }
    scratch.cursors.clear();
    scratch.cursors.extend_from_slice(&scratch.offsets[..n]);
}

/// Advances every source cursor through pairs at distance `≤ r`,
/// feeding them to the engine. Monotone: call with increasing `r`.
fn grow_covers_to(scratch: &mut SolverScratch, r: u32) {
    let n = scratch.offsets.len() - 1;
    for s in 0..n {
        let end = scratch.offsets[s + 1];
        let mut c = scratch.cursors[s];
        while c < end && scratch.ord_dist[c] <= r {
            scratch.engine.add_pair(s as u32, scratch.ord_node[c]);
            c += 1;
        }
        scratch.cursors[s] = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_core::equilibrium::best_response_exhaustive;
    use ncg_core::GameState;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_matches_exhaustive(state: &GameState, spec: &GameSpec) {
        for u in 0..state.n() as NodeId {
            let view = PlayerView::build(state, u, spec.k);
            let exhaustive = best_response_exhaustive(spec, &view).unwrap();
            let solver = max_best_response(spec, &view, Mode::Exact);
            assert!(
                (solver.total_cost - exhaustive.total_cost).abs() < 1e-9,
                "u={u}, α={}, k={}: solver {} vs exhaustive {} (solver strat {:?}, exh {:?})",
                spec.alpha,
                spec.k,
                solver.total_cost,
                exhaustive.total_cost,
                solver.strategy_local,
                exhaustive.strategy_local,
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_cycles() {
        for n in [6usize, 9, 12] {
            let state = GameState::cycle_successor(n);
            for k in [1u32, 2, 3] {
                for alpha in [0.025, 0.3, 1.0, 2.5, 8.0] {
                    assert_matches_exhaustive(&state, &GameSpec::max(alpha, k));
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..6 {
            let tree = ncg_graph::generators::random_tree(14, &mut rng);
            let state = GameState::from_graph_random_ownership(&tree, &mut rng);
            for k in [2u32, 3] {
                for alpha in [0.1, 1.0, 5.0] {
                    assert_matches_exhaustive(&state, &GameSpec::max(alpha, k));
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        for _ in 0..6 {
            let g = ncg_graph::generators::gnp_connected(13, 0.25, 100, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for k in [2u32, 4] {
                for alpha in [0.05, 0.7, 2.0] {
                    assert_matches_exhaustive(&state, &GameSpec::max(alpha, k));
                }
            }
        }
    }

    #[test]
    fn isolated_player_returns_empty_strategy() {
        let state = GameState::new(3);
        let view = PlayerView::build(&state, 0, 5);
        let d = max_best_response(&GameSpec::max(1.0, 5), &view, Mode::Exact);
        assert!(d.strategy_local.is_empty());
        assert_eq!(d.total_cost, 0.0);
    }

    #[test]
    fn star_leaf_keeps_quiet_for_expensive_edges() {
        let state = GameState::star_center_owned(10);
        let spec = GameSpec::max(3.0, 3);
        let view = PlayerView::build(&state, 4, spec.k);
        let d = max_best_response(&spec, &view, Mode::Exact);
        // Leaf cost: 0 edges + ecc 2 = 2; nothing beats it at α=3.
        assert!(d.strategy_local.is_empty());
        assert!((d.total_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_cannot_improve() {
        let state = GameState::star_center_owned(10);
        let spec = GameSpec::max(2.0, 3);
        let view = PlayerView::build(&state, 0, spec.k);
        let d = max_best_response(&spec, &view, Mode::Exact);
        assert!((d.total_cost - (9.0 * 2.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn path_end_buys_shortcut_when_cheap() {
        // Path 0-..-8; player 0 owns (0,1), k big. With α tiny she
        // should buy shortcuts and drop her eccentricity.
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); 9];
        for (i, sigma) in strategies.iter_mut().enumerate().take(8) {
            sigma.push((i + 1) as NodeId);
        }
        let state = GameState::from_strategies(9, strategies);
        let spec = GameSpec::max(0.1, 100);
        let view = PlayerView::build(&state, 0, spec.k);
        let d = max_best_response(&spec, &view, Mode::Exact);
        let current = current_total(&spec, &view);
        assert!(d.total_cost < current - 1.0, "expected a big improvement");
        assert!(d.strategy_local.len() >= 2);
    }

    #[test]
    fn greedy_never_beats_exact_and_never_worse_than_current() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for _ in 0..5 {
            let g = ncg_graph::generators::gnp_connected(20, 0.15, 100, &mut rng).unwrap();
            let state = GameState::from_graph_random_ownership(&g, &mut rng);
            for alpha in [0.2, 1.0, 4.0] {
                let spec = GameSpec::max(alpha, 3);
                for u in 0..state.n() as NodeId {
                    let view = PlayerView::build(&state, u, spec.k);
                    let exact = max_best_response(&spec, &view, Mode::Exact);
                    let greedy = max_best_response(&spec, &view, Mode::Greedy);
                    let current = current_total(&spec, &view);
                    assert!(exact.total_cost <= greedy.total_cost + 1e-9);
                    assert!(greedy.total_cost <= current + 1e-9);
                }
            }
        }
    }

    #[test]
    fn full_knowledge_best_response_solves_larger_views() {
        // A 40-node connected G(n,p): the exact solver must handle the
        // full-view best response quickly (this is the paper's n=100+
        // regime scaled down for unit-test time).
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let g = ncg_graph::generators::gnp_connected(40, 0.1, 100, &mut rng).unwrap();
        let state = GameState::from_graph_random_ownership(&g, &mut rng);
        let spec = GameSpec::max(1.0, 1000);
        for u in 0..5 {
            let view = PlayerView::build(&state, u, spec.k);
            let d = max_best_response(&spec, &view, Mode::Exact);
            assert!(d.total_cost <= current_total(&spec, &view) + 1e-9);
        }
    }
}
