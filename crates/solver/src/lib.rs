//! # ncg-solver — best-response engines
//!
//! The computational heart of the reproduction: exact and greedy best
//! responses for both game variants, built on a constrained minimum
//! dominating set branch-and-bound (our replacement for the paper's
//! Gurobi ILP, Section 5.3 — see the workspace DESIGN.md §4 for the
//! substitution argument).
//!
//! * [`dominating`] — the one-shot instance type + greedy set-cover
//!   baseline.
//! * [`engine`] — the persistent, incremental
//!   [`DominationEngine`](engine::DominationEngine): grows coverage
//!   across eccentricity guesses instead of rebuilding, and owns every
//!   scratch buffer of the branch-and-bound.
//! * [`max_br`] — MaxNCG best response via eccentricity guessing +
//!   domination of powers of `H ∖ {u}`, driving one engine per view.
//! * [`sum_br`] / [`sum_engine`] — SumNCG best response: an exact
//!   include/exclude branch-and-bound over candidate purchases
//!   (admissible residual-improvement bounds, DESIGN.md §9) with hill
//!   climbing as the greedy ablation arm. The paper's experiments
//!   avoid SumNCG for its hardness; our exact path handles the
//!   ~100-node full-knowledge views of the dynamics.
//! * [`front`] — the generic best-response front: one entry point
//!   dispatching every model-zoo cell (objective × edge cost × move
//!   rule × mode) to the right engine — the exact Max/Sum engines on
//!   their uniform subset-move home turf, exact swap-neighbourhood
//!   enumeration for swap games, enumeration-or-hill-climb for
//!   non-uniform pricing.
//! * [`SolverScratch`] — the reusable allocation bundle (BFS buffers,
//!   APSP orders, the engine) threaded through the `*_with` entry
//!   points; hold one per thread or long-lived computation.
//! * [`Responder`] — a [`ncg_core::equilibrium::BestResponder`]
//!   dispatching through [`front`], in [`Mode::Exact`] or
//!   [`Mode::Greedy`] (the ablation axis). Owns a [`SolverScratch`],
//!   so a responder held across a dynamics run reuses all solver
//!   state from round to round.
//!
//! ## Example
//!
//! ```
//! use ncg_core::{GameSpec, GameState};
//! use ncg_solver::{is_lke, Responder};
//!
//! // Lemma 3.1: the n-cycle is an LKE for MaxNCG whenever α ≥ k − 1.
//! let state = GameState::cycle_successor(16);
//! assert!(is_lke(&state, &GameSpec::max(3.0, 2)));
//! // …and with cheap edges + a wide view it no longer is.
//! assert!(!is_lke(&state, &GameSpec::max(0.1, 8)));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod bound;
pub mod dominating;
pub mod engine;
pub mod front;
pub mod max_br;
pub mod sum_br;
pub mod sum_engine;

use ncg_core::deviation::EvalScratch;
use ncg_core::equilibrium::{self, BestResponder, Deviation};
use ncg_core::{GameSpec, GameState, PlayerView, ViewScratch};
use ncg_graph::batch::{batch_bfs, batch_enabled, BatchDistances, BatchScratch, WORD_LANES};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Search effort: exact optimisation or the greedy/heuristic variant
/// (the ablation axis of the benchmark suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Exact best responses (B&B dominating sets / exhaustive search).
    #[default]
    Exact,
    /// Greedy dominating sets / hill climbing.
    Greedy,
}

/// When (and how wide) the exact branch-and-bound fans out over the
/// work-stealing pool (DESIGN.md §8).
///
/// Output is bit-identical either way
/// ([`DominationEngine::solve_exact_parallel`](engine::DominationEngine::solve_exact_parallel)'s
/// two-pass canonical rule), so the policy is purely a performance
/// trade: frontier expansion plus one engine snapshot per worker only
/// pay off once a single solve is expensive. The dynamics hot path —
/// thousands of sub-millisecond solves on tiny views per round — must
/// stay sequential, hence the ground-set threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Ground sets (view sizes) strictly smaller than this always
    /// solve sequentially *until a solve-time estimate exists* (and
    /// always, when `adaptive` is off). The default keeps the
    /// ≈100-node full-knowledge views of the paper's dynamics —
    /// ~0.7 ms solves — on the sequential fast path while the
    /// certification-scale instances beyond it fan out.
    pub min_ground: usize,
    /// Root-frontier subproblems per worker (the `C` in the `W·C`
    /// frontier target): enough slack for the steal-half scheduler to
    /// rebalance uneven subtrees.
    pub per_worker: usize,
    /// Derive the cutover from *measured* per-node solve times once a
    /// [`SolveEstimate`] has samples, instead of the static
    /// `min_ground` size threshold (on by default). Decisions may then
    /// differ run to run with the machine's load — harmless, because
    /// every engine is bit-identical for any worker count. Pinned off
    /// by [`ParallelPolicy::sequential`] and by the
    /// `NCG_PAR_MIN_GROUND` environment override.
    pub adaptive: bool,
}

/// Ground sets below this never fan out, whatever the estimate says:
/// at dynamics-view scale the frontier expansion plus per-worker
/// engine snapshots cost more than the solve.
pub const ADAPTIVE_FLOOR: usize = 24;

/// Predicted sequential solve time (nanoseconds) above which fanning
/// out pays for its setup — about 2 ms, a few hundred times the
/// per-worker snapshot cost.
pub const ADAPTIVE_CUTOVER_NANOS: f64 = 2_000_000.0;

/// Parses the `NCG_PAR_MIN_GROUND` override: a plain ground-set size
/// that pins the static threshold (and disables adaptation). Pure, so
/// it is testable without racing the process environment.
pub fn min_ground_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse().ok()
}

impl Default for ParallelPolicy {
    fn default() -> Self {
        match min_ground_override(std::env::var("NCG_PAR_MIN_GROUND").ok().as_deref()) {
            Some(pinned) => ParallelPolicy { min_ground: pinned, per_worker: 8, adaptive: false },
            None => ParallelPolicy { min_ground: 112, per_worker: 8, adaptive: true },
        }
    }
}

impl ParallelPolicy {
    /// A policy that never parallelises (single-core ablations, bench
    /// baselines).
    pub fn sequential() -> Self {
        ParallelPolicy { min_ground: usize::MAX, adaptive: false, ..Self::default() }
    }

    /// Worker count for a solve over `ground` elements under the
    /// static threshold: 1 below it, otherwise the pool's current
    /// thread count. Inside a pool worker (a sweep repetition, a
    /// parallel LKE player) this is 1 by construction, so nested
    /// solves never over-subscribe.
    pub fn workers(&self, ground: usize) -> usize {
        if ground < self.min_ground {
            1
        } else {
            rayon::current_num_threads()
        }
    }

    /// Worker count for a solve over `ground` elements, preferring the
    /// measured per-node solve-time estimate when `adaptive` is on and
    /// samples exist: fan out iff the predicted sequential time clears
    /// [`ADAPTIVE_CUTOVER_NANOS`] (never below [`ADAPTIVE_FLOOR`]).
    /// With no samples yet — or with `adaptive` off — this is the
    /// static [`ParallelPolicy::workers`] threshold.
    pub fn workers_for(&self, ground: usize, estimate: &SolveEstimate) -> usize {
        if !self.adaptive {
            return self.workers(ground);
        }
        if ground < ADAPTIVE_FLOOR {
            return 1;
        }
        match estimate.predicted_nanos(ground) {
            Some(nanos) if nanos >= ADAPTIVE_CUTOVER_NANOS => rayon::current_num_threads(),
            Some(_) => 1,
            None => self.workers(ground),
        }
    }
}

/// Running estimate of sequential exact-solve cost, as an exponential
/// moving average of per-ground-element time. [`SolverScratch`] owns
/// one; the engines record each *sequential* exact solve of at least
/// [`ADAPTIVE_FLOOR`] elements, and
/// [`ParallelPolicy::workers_for`] predicts the next solve's cost from
/// it. Purely advisory — the solve result is bit-identical however the
/// decision falls.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveEstimate {
    per_node_nanos: f64,
    samples: u64,
}

impl SolveEstimate {
    /// Folds one sequential solve (`ground` elements, `elapsed_nanos`
    /// wall time) into the moving average.
    pub fn record(&mut self, ground: usize, elapsed_nanos: u64) {
        if ground == 0 {
            return;
        }
        let sample = elapsed_nanos as f64 / ground as f64;
        self.per_node_nanos =
            if self.samples == 0 { sample } else { 0.7 * self.per_node_nanos + 0.3 * sample };
        self.samples += 1;
    }

    /// Predicted sequential solve time over `ground` elements, or
    /// `None` before the first sample.
    pub fn predicted_nanos(&self, ground: usize) -> Option<f64> {
        (self.samples > 0).then_some(self.per_node_nanos * ground as f64)
    }

    /// Number of solves folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Reusable allocation bundle for the best-response engines: the
/// deviation-evaluation scratch, the BFS buffer and flattened APSP
/// orders of the reduction, and the incremental
/// [`DominationEngine`](engine::DominationEngine) itself.
///
/// One scratch per thread (or per long-lived computation); thread it
/// through [`max_br::max_best_response_with`] /
/// [`sum_br::sum_best_response_with`] and nothing in the per-view hot
/// path allocates after warm-up. The plain `max_best_response` /
/// `sum_best_response` entry points create a throwaway scratch per
/// call.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    pub(crate) eval: EvalScratch,
    pub(crate) buf: DistanceBuffer,
    /// Per-source BFS visit orders on `H ∖ {center}`, flattened; node
    /// ids and distances in non-decreasing distance order per source.
    pub(crate) ord_node: Vec<NodeId>,
    pub(crate) ord_dist: Vec<u32>,
    /// `offsets[s]..offsets[s+1]` delimits source `s` in the flat
    /// order arrays.
    pub(crate) offsets: Vec<usize>,
    /// Per-source consumption cursor of the incremental coverage
    /// growth (advances monotonically with the eccentricity guess).
    pub(crate) cursors: Vec<usize>,
    pub(crate) engine: engine::DominationEngine,
    pub(crate) sum: sum_engine::SumEngine,
    /// When the exact solves behind this scratch fan out over the
    /// work-stealing pool. Defaults keep small views sequential;
    /// results are bit-identical under any policy.
    pub parallel: ParallelPolicy,
    /// Measured solve-time estimate feeding the adaptive policy.
    pub estimate: SolveEstimate,
}

impl SolverScratch {
    /// Fresh scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The workspace's standard [`BestResponder`]: dispatches on the
/// spec's objective and the configured [`Mode`].
///
/// Owns a [`SolverScratch`], so holding one responder across many
/// best-response calls (a dynamics run, an LKE certification sweep)
/// reuses every solver allocation between calls.
#[derive(Debug, Clone, Default)]
pub struct Responder {
    /// Search effort.
    pub mode: Mode,
    scratch: SolverScratch,
}

impl Responder {
    /// A responder with the given search effort.
    pub fn new(mode: Mode) -> Self {
        Responder { mode, scratch: SolverScratch::new() }
    }

    /// An exact responder.
    pub fn exact() -> Self {
        Self::new(Mode::Exact)
    }

    /// A greedy responder.
    pub fn greedy() -> Self {
        Self::new(Mode::Greedy)
    }

    /// Sets the owned scratch's [`ParallelPolicy`] (builder style).
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.scratch.parallel = policy;
        self
    }
}

impl BestResponder for Responder {
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
        front::best_response_with(spec, view, self.mode, &mut self.scratch)
    }
}

/// Exact LKE check: `n` exact best responses.
///
/// Exact in both directions for both objectives: MaxNCG solves run
/// the domination branch-and-bound, SumNCG solves the include/exclude
/// branch-and-bound of [`sum_engine::SumEngine`] (the seed-era
/// hill-climb fallback — which made SumNCG checks sound only as a
/// negative certificate — is gone), so a `true` here is a genuine
/// equilibrium certificate for any view size.
///
/// Dispatches the view construction to the 64-lane batched ball
/// kernel ([`is_lke_batched`]) unless `NCG_BATCH_BFS=0`; the verdict
/// is identical either way.
pub fn is_lke(state: &GameState, spec: &GameSpec) -> bool {
    if batch_enabled() {
        is_lke_batched(state, spec)
    } else {
        equilibrium::is_lke_with(state, spec, &mut Responder::exact())
    }
}

/// Exact LKE check with the per-player radius-`k` balls computed by
/// the bit-parallel batched BFS kernel: one CSR freeze, then
/// `⌈n/64⌉` lane-group sweeps instead of `n` scalar bounded BFS runs,
/// each lane's ball feeding [`PlayerView::build_from_ball`] (one view
/// slot rebuilt in place across all players). Player order, early
/// exit on the first violation, and the verdict are identical to the
/// scalar [`equilibrium::is_lke_with`] path.
pub fn is_lke_batched(state: &GameState, spec: &GameSpec) -> bool {
    let n = state.n();
    let csr = CsrGraph::from_graph(state.graph());
    let mut responder = Responder::exact();
    let mut scratch = BatchScratch::new();
    let mut dists = BatchDistances::default();
    let mut vscratch = ViewScratch::new();
    let mut ball: Vec<NodeId> = Vec::new();
    let mut sources: Vec<NodeId> = Vec::new();
    let mut view: Option<PlayerView> = None;
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + WORD_LANES).min(n);
        sources.clear();
        sources.extend(lo as NodeId..hi as NodeId);
        batch_bfs(&csr, &sources, spec.k, &mut scratch, &mut dists);
        for lane in 0..hi - lo {
            let u = (lo + lane) as NodeId;
            dists.lane_ball_into(lane, &mut ball);
            match view.as_mut() {
                Some(v) => v.rebuild_from_ball(state, u, spec.k, &ball, &mut vscratch),
                None => {
                    view =
                        Some(PlayerView::build_from_ball(state, u, spec.k, &ball, &mut vscratch));
                }
            }
            let v = view.as_ref().expect("slot filled above");
            let current = ncg_core::deviation::current_total(spec, v);
            let best = responder.best_response(spec, v);
            if GameSpec::strictly_better(best.total_cost, current) {
                return false;
            }
        }
        lo = hi;
    }
    true
}

/// Exact LKE check with the `n` best responses fanned out over the
/// work-stealing pool: one [`Responder`] per worker, so each worker's
/// [`SolverScratch`] (BFS buffers, APSP orders, domination engine) is
/// reused across all the players it processes. Inside the pool the
/// per-player solves run on the sequential engine (nested parallelism
/// is inline, so the machine is never over-subscribed) — the player
/// fan-out *is* the parallelism here. Same answer as [`is_lke`] on
/// every input — the per-player verdicts are independent, and both
/// objectives are exact in both directions. A found violation
/// short-circuits: the
/// remaining players skip their solves, mirroring [`is_lke`]'s
/// first-violation exit up to in-flight work.
///
/// This is the certification path of the lower-bound gadget sweeps
/// (`ncg-constructions`), whose torus and high-girth instances are the
/// largest exact solves in the workspace.
pub fn is_lke_par(state: &GameState, spec: &GameSpec) -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    let violated = AtomicBool::new(false);
    if batch_enabled() {
        // Batched grain: each pool task certifies one 64-lane group —
        // a single batched ball sweep on the shared CSR, then the
        // group's players solved on a per-worker view slot rebuilt in
        // place. Per-worker state (responder, batch scratch, view
        // scratch) is reused across all the groups a worker steals.
        let n = state.n() as NodeId;
        let csr = CsrGraph::from_graph(state.graph());
        let starts: Vec<NodeId> = (0..n).step_by(WORD_LANES).collect();
        let _: Vec<()> = starts
            .into_par_iter()
            .map_init(
                || {
                    (
                        Responder::exact(),
                        BatchScratch::new(),
                        BatchDistances::default(),
                        ViewScratch::new(),
                        Vec::<NodeId>::new(),
                        Vec::<NodeId>::new(),
                        None::<PlayerView>,
                    )
                },
                |(responder, scratch, dists, vscratch, ball, sources, view), lo| {
                    if violated.load(Ordering::Relaxed) {
                        return;
                    }
                    let hi = (lo + WORD_LANES as NodeId).min(n);
                    sources.clear();
                    sources.extend(lo..hi);
                    batch_bfs(&csr, sources, spec.k, scratch, dists);
                    for lane in 0..(hi - lo) as usize {
                        if violated.load(Ordering::Relaxed) {
                            return;
                        }
                        let u = lo + lane as NodeId;
                        dists.lane_ball_into(lane, ball);
                        match view.as_mut() {
                            Some(v) => v.rebuild_from_ball(state, u, spec.k, ball, vscratch),
                            None => {
                                *view = Some(PlayerView::build_from_ball(
                                    state, u, spec.k, ball, vscratch,
                                ));
                            }
                        }
                        let v = view.as_ref().expect("slot filled above");
                        let current = ncg_core::deviation::current_total(spec, v);
                        let best = responder.best_response(spec, v);
                        if GameSpec::strictly_better(best.total_cost, current) {
                            violated.store(true, Ordering::Relaxed);
                        }
                    }
                },
            )
            .collect();
        return !violated.load(Ordering::Relaxed);
    }
    let _: Vec<()> = (0..state.n() as NodeId)
        .into_par_iter()
        .map_init(Responder::exact, |responder, u| {
            if violated.load(Ordering::Relaxed) {
                return;
            }
            let view = PlayerView::build(state, u, spec.k);
            let current = ncg_core::deviation::current_total(spec, &view);
            let best = responder.best_response(spec, &view);
            if GameSpec::strictly_better(best.total_cost, current) {
                violated.store(true, Ordering::Relaxed);
            }
        })
        .collect();
    !violated.load(Ordering::Relaxed)
}

/// First improving player found by the exact responder, with her
/// deviation translated to global node ids.
pub fn improving_player(state: &GameState, spec: &GameSpec) -> Option<(NodeId, Vec<NodeId>, f64)> {
    let mut responder = Responder::exact();
    for u in 0..state.n() as NodeId {
        let view = PlayerView::build(state, u, spec.k);
        let current = ncg_core::deviation::current_total(spec, &view);
        let best = responder.best_response(spec, &view);
        if GameSpec::strictly_better(best.total_cost, current) {
            let global = view.strategy_to_global(&best.strategy_local);
            return Some((u, global, best.total_cost));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responder_dispatches_both_objectives() {
        let state = GameState::cycle_successor(8);
        let mut r = Responder::exact();
        for spec in [GameSpec::max(1.0, 2), GameSpec::sum(1.0, 2)] {
            let view = PlayerView::build(&state, 0, spec.k);
            let d = r.best_response(&spec, &view);
            assert!(d.total_cost.is_finite());
        }
    }

    #[test]
    fn lemma_31_cycle_certification() {
        // α ≥ k − 1 ⇒ LKE; generous margins on both sides.
        assert!(is_lke(&GameState::cycle_successor(20), &GameSpec::max(2.0, 3)));
        assert!(is_lke(&GameState::cycle_successor(30), &GameSpec::max(9.0, 8)));
        assert!(!is_lke(&GameState::cycle_successor(20), &GameSpec::max(0.05, 9)));
    }

    #[test]
    fn improving_player_reports_global_strategy() {
        let state = GameState::cycle_successor(16);
        let spec = GameSpec::max(0.1, 8);
        let (u, strategy, cost) = improving_player(&state, &spec).unwrap();
        assert!(cost.is_finite());
        assert!(strategy.iter().all(|&v| (v as usize) < state.n() && v != u));
    }

    #[test]
    fn star_is_stable_for_both_objectives() {
        let state = GameState::star_center_owned(12);
        assert!(is_lke(&state, &GameSpec::max(2.0, 4)));
        assert!(is_lke(&state, &GameSpec::sum(2.0, 4)));
    }

    #[test]
    fn batched_certification_matches_the_scalar_path() {
        // `is_lke_batched` and `is_lke_par` must agree with the scalar
        // `equilibrium::is_lke_with` verdict on positive and negative
        // instances, both objectives, including >64-player states
        // (multiple lane groups, one partial).
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(52);
        let mut states = vec![
            GameState::cycle_successor(70),
            GameState::star_center_owned(66),
            GameState::cycle_successor(12),
        ];
        let tree = ncg_graph::generators::random_tree(30, &mut rng);
        states.push(GameState::from_graph_random_ownership(&tree, &mut rng));
        for (i, state) in states.iter().enumerate() {
            for spec in [
                GameSpec::max(2.0, 2),
                GameSpec::max(0.1, 4),
                GameSpec::sum(2.0, 3),
                GameSpec::sum(0.4, 3),
            ] {
                let scalar = equilibrium::is_lke_with(state, &spec, &mut Responder::exact());
                assert_eq!(
                    is_lke_batched(state, &spec),
                    scalar,
                    "batched verdict (state {i}, α={}, k={})",
                    spec.alpha,
                    spec.k
                );
                assert_eq!(
                    is_lke_par(state, &spec),
                    scalar,
                    "parallel verdict (state {i}, α={}, k={})",
                    spec.alpha,
                    spec.k
                );
            }
        }
    }

    #[test]
    fn sum_lke_certifies_positively_beyond_the_enumeration_cap() {
        // 29 candidates per full view — past both the old 14-candidate
        // sum cap and core's EXHAUSTIVE_CAP, so this `true` is the
        // branch-and-bound's positive certificate, not enumeration's.
        // With cheap edges the center finds real improvements and the
        // certificate flips.
        let state = GameState::star_center_owned(30);
        assert!(is_lke(&state, &GameSpec::sum(2.0, 4)));
        assert!(is_lke_par(&state, &GameSpec::sum(2.0, 4)));
        assert!(!is_lke(&state, &GameSpec::sum(0.5, 4)));
    }
}
