//! # ncg-solver — best-response engines
//!
//! The computational heart of the reproduction: exact and greedy best
//! responses for both game variants, built on a constrained minimum
//! dominating set branch-and-bound (our replacement for the paper's
//! Gurobi ILP, Section 5.3 — see the workspace DESIGN.md §4 for the
//! substitution argument).
//!
//! * [`dominating`] — the one-shot instance type + greedy set-cover
//!   baseline.
//! * [`engine`] — the persistent, incremental
//!   [`DominationEngine`](engine::DominationEngine): grows coverage
//!   across eccentricity guesses instead of rebuilding, and owns every
//!   scratch buffer of the branch-and-bound.
//! * [`max_br`] — MaxNCG best response via eccentricity guessing +
//!   domination of powers of `H ∖ {u}`, driving one engine per view.
//! * [`sum_br`] — SumNCG best response (exact enumeration on small
//!   views, hill climbing beyond — the paper's experiments avoid
//!   SumNCG for exactly this hardness).
//! * [`SolverScratch`] — the reusable allocation bundle (BFS buffers,
//!   APSP orders, the engine) threaded through the `*_with` entry
//!   points; hold one per thread or long-lived computation.
//! * [`Responder`] — a [`ncg_core::equilibrium::BestResponder`]
//!   dispatching on the spec's objective, in [`Mode::Exact`] or
//!   [`Mode::Greedy`] (the ablation axis). Owns a [`SolverScratch`],
//!   so a responder held across a dynamics run reuses all solver
//!   state from round to round.
//!
//! ## Example
//!
//! ```
//! use ncg_core::{GameSpec, GameState};
//! use ncg_solver::{is_lke, Responder};
//!
//! // Lemma 3.1: the n-cycle is an LKE for MaxNCG whenever α ≥ k − 1.
//! let state = GameState::cycle_successor(16);
//! assert!(is_lke(&state, &GameSpec::max(3.0, 2)));
//! // …and with cheap edges + a wide view it no longer is.
//! assert!(!is_lke(&state, &GameSpec::max(0.1, 8)));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod dominating;
pub mod engine;
pub mod max_br;
pub mod sum_br;

use ncg_core::deviation::EvalScratch;
use ncg_core::equilibrium::{self, BestResponder, Deviation};
use ncg_core::{GameSpec, GameState, Objective, PlayerView};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::NodeId;

/// Search effort: exact optimisation or the greedy/heuristic variant
/// (the ablation axis of the benchmark suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Exact best responses (B&B dominating sets / exhaustive search).
    #[default]
    Exact,
    /// Greedy dominating sets / hill climbing.
    Greedy,
}

/// Reusable allocation bundle for the best-response engines: the
/// deviation-evaluation scratch, the BFS buffer and flattened APSP
/// orders of the reduction, and the incremental
/// [`DominationEngine`](engine::DominationEngine) itself.
///
/// One scratch per thread (or per long-lived computation); thread it
/// through [`max_br::max_best_response_with`] /
/// [`sum_br::sum_best_response_with`] and nothing in the per-view hot
/// path allocates after warm-up. The plain `max_best_response` /
/// `sum_best_response` entry points create a throwaway scratch per
/// call.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    pub(crate) eval: EvalScratch,
    pub(crate) buf: DistanceBuffer,
    /// Per-source BFS visit orders on `H ∖ {center}`, flattened; node
    /// ids and distances in non-decreasing distance order per source.
    pub(crate) ord_node: Vec<NodeId>,
    pub(crate) ord_dist: Vec<u32>,
    /// `offsets[s]..offsets[s+1]` delimits source `s` in the flat
    /// order arrays.
    pub(crate) offsets: Vec<usize>,
    /// Per-source consumption cursor of the incremental coverage
    /// growth (advances monotonically with the eccentricity guess).
    pub(crate) cursors: Vec<usize>,
    pub(crate) engine: engine::DominationEngine,
}

impl SolverScratch {
    /// Fresh scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The workspace's standard [`BestResponder`]: dispatches on the
/// spec's objective and the configured [`Mode`].
///
/// Owns a [`SolverScratch`], so holding one responder across many
/// best-response calls (a dynamics run, an LKE certification sweep)
/// reuses every solver allocation between calls.
#[derive(Debug, Clone, Default)]
pub struct Responder {
    /// Search effort.
    pub mode: Mode,
    scratch: SolverScratch,
}

impl Responder {
    /// A responder with the given search effort.
    pub fn new(mode: Mode) -> Self {
        Responder { mode, scratch: SolverScratch::new() }
    }

    /// An exact responder.
    pub fn exact() -> Self {
        Self::new(Mode::Exact)
    }

    /// A greedy responder.
    pub fn greedy() -> Self {
        Self::new(Mode::Greedy)
    }
}

impl BestResponder for Responder {
    fn best_response(&mut self, spec: &GameSpec, view: &PlayerView) -> Deviation {
        match spec.objective {
            Objective::Max => {
                max_br::max_best_response_with(spec, view, self.mode, &mut self.scratch)
            }
            Objective::Sum => {
                sum_br::sum_best_response_with(spec, view, self.mode, &mut self.scratch)
            }
        }
    }
}

/// Exact LKE check: `n` exact best responses.
///
/// For [`Objective::Sum`] on views larger than the exhaustive cap the
/// underlying best response is a hill climb, making the check sound
/// only as a *negative* certificate (a found improvement disproves
/// equilibrium); MaxNCG checks are exact in both directions.
pub fn is_lke(state: &GameState, spec: &GameSpec) -> bool {
    equilibrium::is_lke_with(state, spec, &mut Responder::exact())
}

/// First improving player found by the exact responder, with her
/// deviation translated to global node ids.
pub fn improving_player(state: &GameState, spec: &GameSpec) -> Option<(NodeId, Vec<NodeId>, f64)> {
    let mut responder = Responder::exact();
    for u in 0..state.n() as NodeId {
        let view = PlayerView::build(state, u, spec.k);
        let current = ncg_core::deviation::current_total(spec, &view);
        let best = responder.best_response(spec, &view);
        if GameSpec::strictly_better(best.total_cost, current) {
            let global = view.strategy_to_global(&best.strategy_local);
            return Some((u, global, best.total_cost));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responder_dispatches_both_objectives() {
        let state = GameState::cycle_successor(8);
        let mut r = Responder::exact();
        for spec in [GameSpec::max(1.0, 2), GameSpec::sum(1.0, 2)] {
            let view = PlayerView::build(&state, 0, spec.k);
            let d = r.best_response(&spec, &view);
            assert!(d.total_cost.is_finite());
        }
    }

    #[test]
    fn lemma_31_cycle_certification() {
        // α ≥ k − 1 ⇒ LKE; generous margins on both sides.
        assert!(is_lke(&GameState::cycle_successor(20), &GameSpec::max(2.0, 3)));
        assert!(is_lke(&GameState::cycle_successor(30), &GameSpec::max(9.0, 8)));
        assert!(!is_lke(&GameState::cycle_successor(20), &GameSpec::max(0.05, 9)));
    }

    #[test]
    fn improving_player_reports_global_strategy() {
        let state = GameState::cycle_successor(16);
        let spec = GameSpec::max(0.1, 8);
        let (u, strategy, cost) = improving_player(&state, &spec).unwrap();
        assert!(cost.is_finite());
        assert!(strategy.iter().all(|&v| (v as usize) < state.n() && v != u));
    }

    #[test]
    fn star_is_stable_for_both_objectives() {
        let state = GameState::star_center_owned(12);
        assert!(is_lke(&state, &GameSpec::max(2.0, 4)));
        assert!(is_lke(&state, &GameSpec::sum(2.0, 4)));
    }
}
