//! # ncg-constructions — the paper's lower-bound gadgets
//!
//! Executable versions of the three families of equilibrium graphs
//! that drive every PoA lower bound in the paper, each paired with a
//! *certifier* that checks the LKE property computationally via the
//! exact solver:
//!
//! * [`cycle`] — Lemma 3.1: the successor-owned cycle, an LKE for
//!   `α ≥ k − 1`, witnessing `PoA = Ω(n/(1+α))`.
//! * [`high_girth`] — Lemma 3.2 / Theorem 4.3: quasi-`q`-regular
//!   graphs of girth `≥ 2k+2`, whose views are trees.
//! * [`torus`] — Section 3.1's stretched toroidal grid (Figures 1–2):
//!   the `d`-dimensional construction with per-dimension sizes
//!   `δ₁ … δ_d` and stretch `ℓ`, including the exact coordinate
//!   scheme, path ownership, `F_h` sets and the Lemma 3.3 distance
//!   bound. Instantiations for Theorem 3.12 (MaxNCG) and Theorem 4.2
//!   (SumNCG) are provided.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cycle;
pub mod high_girth;
pub mod torus;

pub use torus::TorusGrid;
