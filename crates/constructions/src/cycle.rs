//! Lemma 3.1: the cycle lower bound.
//!
//! On a cycle of `n ≥ 2k + 2` players where each owns exactly one
//! edge, every view is a path of length `2k` centered at the player;
//! buying any edge costs `α` and saves at most `k − 1` eccentricity,
//! so for `α ≥ k − 1` the profile is an LKE. Its social cost is
//! `Θ(αn + n²)` against the star's `Θ(αn + n)`:
//! `PoA = Ω(n / (1 + α))`.

use ncg_core::{GameSpec, GameState};
use ncg_solver::is_lke_par;

/// The Lemma 3.1 profile: an `n`-cycle, player `u` owning the edge to
/// `(u+1) mod n`.
pub fn cycle_equilibrium(n: usize) -> GameState {
    GameState::cycle_successor(n)
}

/// Whether the parameters satisfy the lemma's premise
/// (`α ≥ k − 1`, `n ≥ 2k + 2`).
pub fn lemma_premise(n: usize, alpha: f64, k: u32) -> bool {
    alpha >= k as f64 - 1.0 && n as f64 >= 2.0 * k as f64 + 2.0
}

/// Certifies computationally that the cycle is an LKE for the given
/// parameters (exact best responses for every player, fanned out over
/// the work-stealing pool with per-worker solver scratch).
pub fn certify(n: usize, spec: &GameSpec) -> bool {
    is_lke_par(&cycle_equilibrium(n), spec)
}

/// The PoA witnessed by the cycle: measured social cost over the
/// closed-form optimum.
pub fn witnessed_poa(n: usize, spec: &GameSpec) -> f64 {
    let state = cycle_equilibrium(n);
    let sc = ncg_core::social::social_cost(&state, spec).expect("cycles are connected");
    sc / ncg_core::social::optimum_cost(n, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premise_window() {
        assert!(lemma_premise(20, 3.0, 4));
        assert!(!lemma_premise(20, 2.0, 4), "α below k − 1");
        assert!(!lemma_premise(8, 3.0, 4), "n below 2k + 2");
    }

    #[test]
    fn certification_inside_the_premise() {
        for (n, alpha, k) in [(10, 1.0, 1), (12, 2.0, 3), (16, 5.0, 4), (20, 3.5, 4)] {
            assert!(lemma_premise(n, alpha, k));
            assert!(
                certify(n, &GameSpec::max(alpha, k)),
                "cycle n={n} must certify at α={alpha}, k={k}"
            );
        }
    }

    #[test]
    fn certification_fails_outside_for_cheap_edges() {
        // α far below k − 1 with a wide view: players shortcut.
        assert!(!certify(20, &GameSpec::max(0.2, 9)));
    }

    #[test]
    fn witnessed_poa_grows_linearly_in_n() {
        let spec = GameSpec::max(2.0, 2);
        let p20 = witnessed_poa(20, &spec);
        let p80 = witnessed_poa(80, &spec);
        // Ω(n/(1+α)): quadrupling n should roughly quadruple the PoA.
        assert!(p80 > 3.0 * p20, "p20={p20}, p80={p80}");
    }

    #[test]
    fn witnessed_poa_decreases_in_alpha() {
        let p_cheap = witnessed_poa(40, &GameSpec::max(1.0, 2));
        let p_dear = witnessed_poa(40, &GameSpec::max(8.0, 2));
        assert!(p_cheap > p_dear);
    }
}
