//! The stretched toroidal grid of Section 3.1 (Figures 1 and 2).
//!
//! The construction is parameterised by a dimension `d ≥ 2`,
//! per-dimension sizes `δ₁, …, δ_d ≥ 2` and a stretch `ℓ ≥ 1`:
//!
//! * **Intersection vertices** are the tuples `(ℓa₁, …, ℓa_d)` with
//!   all `aᵢ` of equal parity, `0 ≤ aᵢ < 2δᵢ`; the `i`-th coordinate
//!   lives modulo `2δᵢℓ`. There are `N = 2·∏δᵢ` of them.
//! * Each intersection vertex is joined to the `2^d` vertices
//!   `(x₁±ℓ, …, x_d±ℓ)` by a fresh path of length `ℓ`, whose `ℓ−1`
//!   interior **non-intersection vertices** are labelled by stepping
//!   every coordinate by `±1` along the path. Total
//!   `n = N·(1 + 2^{d−1}(ℓ−1))`.
//! * **Ownership**: walking a path `x = x₀, x₁, …, x_ℓ = y`, vertex
//!   `xᵢ` buys the edge to `xᵢ₋₁` (for `1 ≤ i ≤ ℓ−1`) and `x_{ℓ−1}`
//!   additionally buys the edge to `y`; intersection vertices buy
//!   nothing. (For `ℓ = 1` there are no interior vertices; we let the
//!   canonical endpoint buy the edge — a documented deviation, as the
//!   paper only instantiates `ℓ ≥ 2`.)
//!
//! Lemma 3.3 gives the coordinate distance bound
//! `d(x,y) ≥ maxᵢ min(|xᵢ−yᵢ|, 2δᵢℓ−|xᵢ−yᵢ|)`, hence Corollary 3.4:
//! the diameter is at least `ℓ·δ_d`. For the right `(α, k)` the graph
//! is an LKE (Theorem 3.12 for MaxNCG, Lemma 4.1/Theorem 4.2 for
//! SumNCG) with diameter `Ω(n / stuff)` — the strongest lower bounds
//! of the paper. [`TorusGrid::certify`] checks the LKE property
//! directly with the exact solver.

use std::collections::HashMap;

use ncg_core::{GameSpec, GameState};
use ncg_graph::{Graph, GraphError, NodeId};
use ncg_solver::is_lke_par;

/// A built torus/grid instance: graph, ownership and coordinates.
#[derive(Debug, Clone)]
pub struct TorusGrid {
    /// Dimension `d ≥ 2`.
    pub d: usize,
    /// Sizes `δ₁ … δ_d`.
    pub deltas: Vec<u32>,
    /// Stretch `ℓ ≥ 1` (paths replacing edges have this length).
    pub ell: u32,
    /// Coordinates of every vertex (`coords[id][i] < 2·δᵢ·ℓ`).
    pub coords: Vec<Vec<u32>>,
    /// Number of intersection vertices (`ids 0..intersections`).
    pub intersections: usize,
    /// The game profile with the Section 3.1 ownership.
    state: GameState,
    /// Coordinate → vertex id.
    index: HashMap<Vec<u32>, NodeId>,
}

impl TorusGrid {
    /// Builds the closed (toroidal) construction.
    ///
    /// # Errors
    /// `InvalidParameter` if `d < 2`, any `δᵢ < 2`, `ℓ < 1`, or the
    /// parameters make interior path labels collide (cannot happen for
    /// `δᵢ ≥ 2` — asserted defensively).
    pub fn closed(deltas: &[u32], ell: u32) -> Result<Self, GraphError> {
        let d = deltas.len();
        if d < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "torus dimension d = {d} must be ≥ 2"
            )));
        }
        if ell < 1 {
            return Err(GraphError::InvalidParameter("stretch ℓ must be ≥ 1".into()));
        }
        if deltas.iter().any(|&x| x < 2) {
            return Err(GraphError::InvalidParameter(format!(
                "every δᵢ must be ≥ 2, got {deltas:?}"
            )));
        }
        let modulus: Vec<u64> = deltas.iter().map(|&dl| 2 * dl as u64 * ell as u64).collect();
        // Enumerate intersection vertices: tuples a with equal parity.
        let mut coords: Vec<Vec<u32>> = Vec::new();
        let mut index: HashMap<Vec<u32>, NodeId> = HashMap::new();
        for parity in 0..2u32 {
            let mut a: Vec<u32> = vec![parity; d];
            loop {
                let coord: Vec<u32> = a.iter().map(|&ai| ai * ell).collect();
                index.insert(coord.clone(), coords.len() as NodeId);
                coords.push(coord);
                // Odometer over aᵢ ∈ {parity, parity+2, …, parity+2(δᵢ−1)}.
                let mut i = 0;
                loop {
                    if i == d {
                        break;
                    }
                    a[i] += 2;
                    if a[i] < 2 * deltas[i] {
                        break;
                    }
                    a[i] = parity;
                    i += 1;
                }
                if i == d {
                    break;
                }
            }
        }
        let n_inter = coords.len();
        debug_assert_eq!(n_inter as u64, 2 * deltas.iter().map(|&x| x as u64).product::<u64>());
        let paths_per_vertex = 1usize << (d - 1); // canonical: s_d = +1
        let total_paths = n_inter * paths_per_vertex;
        let n_total = n_inter + total_paths * (ell as usize - 1);
        let mut graph = Graph::new(n_total);
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n_total];
        // Walk every canonical path.
        let step = |c: &[u32], s: &[i64], t: i64| -> Vec<u32> {
            c.iter()
                .enumerate()
                .map(|(i, &ci)| {
                    let m = modulus[i] as i64;
                    (((ci as i64 + t * s[i]) % m + m) % m) as u32
                })
                .collect()
        };
        for x_id in 0..n_inter as NodeId {
            let x_coord = coords[x_id as usize].clone();
            for sign_mask in 0..paths_per_vertex {
                // signs for dims 0..d−1 from the mask; dim d−1 fixed +1.
                let s: Vec<i64> = (0..d)
                    .map(|i| if i == d - 1 || sign_mask >> i & 1 == 1 { 1 } else { -1 })
                    .collect();
                let mut prev = x_id;
                for t in 1..=ell as i64 {
                    let c = step(&x_coord, &s, t);
                    let id = if t == ell as i64 {
                        *index.get(&c).ok_or_else(|| {
                            GraphError::InvalidParameter(format!(
                                "path endpoint {c:?} is not an intersection vertex"
                            ))
                        })?
                    } else {
                        match index.get(&c) {
                            Some(_) => {
                                return Err(GraphError::InvalidParameter(format!(
                                    "interior label collision at {c:?}"
                                )))
                            }
                            None => {
                                let id = coords.len() as NodeId;
                                index.insert(c.clone(), id);
                                coords.push(c.clone());
                                id
                            }
                        }
                    };
                    graph.add_edge(prev, id);
                    // Ownership: interior vertices buy backwards; the
                    // last interior vertex also buys the final edge.
                    if t < ell as i64 {
                        strategies[id as usize].push(prev);
                    } else if ell == 1 {
                        // No interior vertices: canonical start buys.
                        strategies[x_id as usize].push(id);
                    } else {
                        strategies[prev as usize].push(id);
                    }
                    prev = id;
                }
            }
        }
        debug_assert_eq!(coords.len(), n_total);
        debug_assert_eq!(graph.edge_count(), total_paths * ell as usize);
        let state = {
            // from_strategies re-sorts and validates against the graph.
            let st = GameState::from_strategies(n_total, strategies);
            debug_assert_eq!(st.graph(), &graph, "ownership must cover exactly the built edges");
            st
        };
        Ok(TorusGrid {
            d,
            deltas: deltas.to_vec(),
            ell,
            coords,
            intersections: n_inter,
            state,
            index,
        })
    }

    /// The Theorem 3.12 instantiation for MaxNCG: `ℓ = ⌈α⌉`,
    /// `d = max(2, ⌈log₂(k/ℓ + 2)⌉)`, `δ₁ = … = δ_{d−1} = ⌈k/ℓ⌉ + 1`
    /// and `δ_d = max(δ₁, delta_last)` (the free parameter that drives
    /// the diameter, hence `n`).
    ///
    /// # Errors
    /// `InvalidParameter` unless `1 < α ≤ k`.
    pub fn for_theorem_312(alpha: f64, k: u32, delta_last: u32) -> Result<Self, GraphError> {
        if !(alpha > 1.0 && alpha <= k as f64) {
            return Err(GraphError::InvalidParameter(format!(
                "Theorem 3.12 needs 1 < α ≤ k, got α={alpha}, k={k}"
            )));
        }
        let ell = alpha.ceil() as u32;
        let d = ((k as f64 / ell as f64 + 2.0).log2().ceil() as usize).max(2);
        let base = k.div_ceil(ell) + 1;
        let mut deltas = vec![base; d];
        deltas[d - 1] = delta_last.max(base);
        Self::closed(&deltas, ell)
    }

    /// The Lemma 4.1 / Theorem 4.2 instantiation for SumNCG: `d = 2`,
    /// `ℓ = 2`, `δ₁ = ⌈k/2⌉ + 1`, `δ₂ = max(δ₁, delta2)`.
    pub fn for_theorem_42(k: u32, delta2: u32) -> Result<Self, GraphError> {
        let d1 = k.div_ceil(2) + 1;
        Self::closed(&[d1, d1.max(delta2)], 2)
    }

    /// The "open" variant of the construction (used by the paper's
    /// proofs, Lemma 3.5): coordinates are *not* taken modularly —
    /// intersection vertices are `(ℓa₁, …, ℓa_d)` with `1 ≤ aᵢ ≤ δᵢ`
    /// and equal parities, and paths only join intersection vertices
    /// whose every coordinate differs by exactly `ℓ` (no wrap-around).
    /// Every player's view in the closed graph is isomorphic to a
    /// subgraph of a large enough open graph.
    ///
    /// Ownership follows the same rule as the closed variant.
    ///
    /// # Errors
    /// Same parameter constraints as [`TorusGrid::closed`].
    pub fn open(deltas: &[u32], ell: u32) -> Result<Self, GraphError> {
        let d = deltas.len();
        if d < 2 {
            return Err(GraphError::InvalidParameter(format!(
                "grid dimension d = {d} must be ≥ 2"
            )));
        }
        if ell < 1 {
            return Err(GraphError::InvalidParameter("stretch ℓ must be ≥ 1".into()));
        }
        if deltas.iter().any(|&x| x < 2) {
            return Err(GraphError::InvalidParameter(format!(
                "every δᵢ must be ≥ 2, got {deltas:?}"
            )));
        }
        // Enumerate intersection vertices with equal-parity aᵢ ∈ [1, δᵢ].
        let mut coords: Vec<Vec<u32>> = Vec::new();
        let mut index: HashMap<Vec<u32>, NodeId> = HashMap::new();
        for parity in 1..=2u32 {
            let mut a: Vec<u32> = vec![parity; d];
            if deltas.iter().any(|&dl| parity > dl) {
                continue;
            }
            loop {
                let coord: Vec<u32> = a.iter().map(|&ai| ai * ell).collect();
                index.insert(coord.clone(), coords.len() as NodeId);
                coords.push(coord);
                let mut i = 0;
                loop {
                    if i == d {
                        break;
                    }
                    a[i] += 2;
                    if a[i] <= deltas[i] {
                        break;
                    }
                    a[i] = parity;
                    i += 1;
                }
                if i == d {
                    break;
                }
            }
        }
        let n_inter = coords.len();
        // Connect pairs differing by exactly ℓ in every coordinate via
        // fresh paths. Canonical direction: positive last coordinate.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut owners: Vec<NodeId> = Vec::new();
        for x_id in 0..n_inter as NodeId {
            let x = coords[x_id as usize].clone();
            for sign_mask in 0..(1usize << (d - 1)) {
                let s: Vec<i64> = (0..d)
                    .map(|i| if i == d - 1 || sign_mask >> i & 1 == 1 { 1i64 } else { -1i64 })
                    .collect();
                // Endpoint must exist (no wrap): compute and look up.
                let endpoint: Option<Vec<u32>> = x
                    .iter()
                    .zip(&s)
                    .map(|(&ci, &si)| {
                        let v = ci as i64 + si * ell as i64;
                        if v >= 0 {
                            Some(v as u32)
                        } else {
                            None
                        }
                    })
                    .collect();
                let Some(endpoint) = endpoint else { continue };
                if !index.contains_key(&endpoint) {
                    continue;
                }
                let y_id = index[&endpoint];
                let mut prev = x_id;
                for t in 1..=ell as i64 {
                    let id = if t == ell as i64 {
                        y_id
                    } else {
                        let c: Vec<u32> = x
                            .iter()
                            .zip(&s)
                            .map(|(&ci, &si)| (ci as i64 + t * si) as u32)
                            .collect();
                        *index.entry(c.clone()).or_insert_with(|| {
                            coords.push(c.clone());
                            (coords.len() - 1) as NodeId
                        })
                    };
                    edges.push((prev, id));
                    owners.push(if t < ell as i64 {
                        id
                    } else if ell == 1 {
                        x_id
                    } else {
                        prev
                    });
                    prev = id;
                }
            }
        }
        let n_total = coords.len();
        let mut graph = Graph::new(n_total);
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n_total];
        for (&(a, b), &w) in edges.iter().zip(&owners) {
            graph.add_edge(a, b);
            let other = if w == a { b } else { a };
            strategies[w as usize].push(other);
        }
        let state = GameState::from_strategies(n_total, strategies);
        debug_assert_eq!(state.graph(), &graph);
        Ok(TorusGrid {
            d,
            deltas: deltas.to_vec(),
            ell,
            coords,
            intersections: n_inter,
            state,
            index,
        })
    }

    /// The Lemma 3.5 coordinate bound for the *open* variant:
    /// `d(x, y) ≥ maxᵢ |xᵢ − yᵢ|` (no modular wrap).
    pub fn open_distance_lb(&self, x: NodeId, y: NodeId) -> u32 {
        let cx = &self.coords[x as usize];
        let cy = &self.coords[y as usize];
        (0..self.d).map(|i| cx[i].abs_diff(cy[i])).max().unwrap_or(0)
    }

    /// The game profile.
    pub fn state(&self) -> &GameState {
        &self.state
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.coords.len()
    }

    /// Whether vertex `id` is an intersection vertex.
    pub fn is_intersection(&self, id: NodeId) -> bool {
        (id as usize) < self.intersections
    }

    /// Vertex id at the given coordinates, if any.
    pub fn vertex_at(&self, coord: &[u32]) -> Option<NodeId> {
        self.index.get(coord).copied()
    }

    /// The Lemma 3.3 coordinate lower bound on `d(x, y)`:
    /// `maxᵢ min(|xᵢ−yᵢ|, 2δᵢℓ − |xᵢ−yᵢ|)`.
    pub fn coordinate_distance_lb(&self, x: NodeId, y: NodeId) -> u32 {
        let cx = &self.coords[x as usize];
        let cy = &self.coords[y as usize];
        (0..self.d)
            .map(|i| {
                let m = 2 * self.deltas[i] * self.ell;
                let diff = cx[i].abs_diff(cy[i]);
                diff.min(m - diff)
            })
            .max()
            .unwrap_or(0)
    }

    /// The set `F_h(v)` of the paper: vertices reachable by moving
    /// every coordinate by `±h` (existing ones only; for intersection
    /// vertices and `h ≤ k` the paper shows `|F_h| = 2^d`).
    pub fn f_h(&self, v: NodeId, h: u32) -> Vec<NodeId> {
        let c = &self.coords[v as usize];
        let mut out = Vec::new();
        for mask in 0..(1u32 << self.d) {
            let coord: Vec<u32> = (0..self.d)
                .map(|i| {
                    let m = 2 * self.deltas[i] as i64 * self.ell as i64;
                    let s: i64 = if mask >> i & 1 == 1 { 1 } else { -1 };
                    (((c[i] as i64 + s * h as i64) % m + m) % m) as u32
                })
                .collect();
            if let Some(id) = self.vertex_at(&coord) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Certifies the LKE property with the exact solver (`n` best
    /// responses, fanned out over the work-stealing pool with
    /// per-worker solver scratch). MaxNCG certification is exact;
    /// SumNCG is exact whenever views stay within the exhaustive cap.
    pub fn certify(&self, spec: &GameSpec) -> bool {
        is_lke_par(&self.state, spec)
    }

    /// Corollary 3.4: the diameter lower bound `ℓ·δ_d`.
    pub fn diameter_lower_bound(&self) -> u32 {
        self.ell * self.deltas[self.d - 1]
    }

    /// The PoA this instance witnesses under `spec`.
    pub fn witnessed_poa(&self, spec: &GameSpec) -> Option<f64> {
        let sc = ncg_core::social::social_cost(&self.state, spec)?;
        Some(sc / ncg_core::social::optimum_cost(self.n(), spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncg_graph::metrics;

    #[test]
    #[allow(clippy::identity_op)] // the factors spell out N(1 + 2^{d−1}(ℓ−1))
    fn figure2_shape() {
        // Figure 2: d = 2, δ = (3, 4), ℓ = 2.
        let t = TorusGrid::closed(&[3, 4], 2).unwrap();
        assert_eq!(t.intersections, 2 * 3 * 4);
        assert_eq!(t.n(), 24 * (1 + 2 * 1));
        assert_eq!(t.state().graph().edge_count(), 24 * 2 * 2);
        assert!(t.state().validate().is_ok());
        assert!(metrics::is_connected(t.state().graph()));
    }

    #[test]
    fn intersection_vertices_buy_nothing_and_interiors_buy_at_most_two() {
        let t = TorusGrid::closed(&[3, 4], 2).unwrap();
        for id in 0..t.n() as NodeId {
            if t.is_intersection(id) {
                assert_eq!(t.state().bought(id), 0, "intersection {id} bought an edge");
            } else {
                let b = t.state().bought(id);
                assert!((1..=2).contains(&b), "interior {id} bought {b}");
            }
        }
        // Interior vertices have degree exactly 2; intersections 2^d.
        for id in 0..t.n() as NodeId {
            let deg = t.state().graph().degree(id);
            if t.is_intersection(id) {
                assert_eq!(deg, 4);
            } else {
                assert_eq!(deg, 2);
            }
        }
    }

    #[test]
    fn lemma_3_3_distance_bound_holds() {
        let t = TorusGrid::closed(&[2, 3], 2).unwrap();
        let dm = metrics::distance_matrix(t.state().graph());
        for x in 0..t.n() as NodeId {
            for y in 0..t.n() as NodeId {
                let lb = t.coordinate_distance_lb(x, y);
                let real = dm[x as usize][y as usize];
                assert!(real >= lb, "d({x},{y}) = {real} below coordinate bound {lb}");
                // Note: the paper also claims strictness when an
                // endpoint is an intersection vertex, but that fails
                // already for adjacent diagonal pairs (e.g. (0,0) and
                // (1,1) at distance 1 = bound). The equilibrium
                // arguments (Lemmas 3.7–3.11) only use the non-strict
                // bound, which is what we verify exhaustively here.
            }
        }
    }

    #[test]
    fn corollary_3_4_diameter() {
        let t = TorusGrid::closed(&[2, 5], 2).unwrap();
        let diam = metrics::diameter(t.state().graph()).unwrap();
        assert!(diam >= t.diameter_lower_bound(), "{diam} < {}", t.diameter_lower_bound());
    }

    #[test]
    fn f_h_of_intersection_vertex_has_2_to_d_members() {
        let t = TorusGrid::closed(&[3, 4], 2).unwrap();
        // k* corner: any intersection vertex works by vertex-transitivity.
        let v = 0;
        for h in [1u32, 2] {
            let fh = t.f_h(v, h);
            assert_eq!(fh.len(), 4, "h = {h}: {fh:?}");
        }
    }

    #[test]
    fn theorem_312_instance_is_max_lke() {
        // α = 2, k = 2 ⇒ ℓ = 2, d = 2, δ₁ = 2.
        let t = TorusGrid::for_theorem_312(2.0, 2, 3).unwrap();
        assert_eq!(t.ell, 2);
        assert_eq!(t.d, 2);
        assert_eq!(t.deltas, vec![2, 3]);
        assert!(t.certify(&GameSpec::max(2.0, 2)), "Theorem 3.12 instance must be a MaxNCG LKE");
    }

    #[test]
    fn theorem_312_rejects_bad_parameters() {
        assert!(TorusGrid::for_theorem_312(0.5, 3, 3).is_err());
        assert!(TorusGrid::for_theorem_312(5.0, 3, 3).is_err());
    }

    #[test]
    fn theorem_42_instance_is_sum_lke() {
        // k = 2, α ≥ 4k³ = 32.
        let t = TorusGrid::for_theorem_42(2, 3).unwrap();
        assert!(
            t.certify(&GameSpec::sum(40.0, 2)),
            "Theorem 4.2 instance must be a SumNCG LKE at α ≥ 4k³"
        );
    }

    #[test]
    fn closed_rejects_degenerate_parameters() {
        assert!(TorusGrid::closed(&[3], 2).is_err(), "d < 2");
        assert!(TorusGrid::closed(&[1, 3], 2).is_err(), "δ < 2");
        assert!(TorusGrid::closed(&[3, 3], 0).is_err(), "ℓ < 1");
    }

    #[test]
    fn stretch_one_works_with_documented_ownership() {
        let t = TorusGrid::closed(&[2, 2], 1).unwrap();
        assert_eq!(t.n(), t.intersections);
        assert!(t.state().validate().is_ok());
        assert!(metrics::is_connected(t.state().graph()));
    }

    #[test]
    fn poa_witness_grows_with_delta_last() {
        let spec = GameSpec::max(2.0, 2);
        let small = TorusGrid::for_theorem_312(2.0, 2, 3).unwrap();
        let large = TorusGrid::for_theorem_312(2.0, 2, 9).unwrap();
        let p_small = small.witnessed_poa(&spec).unwrap();
        let p_large = large.witnessed_poa(&spec).unwrap();
        assert!(
            p_large > p_small,
            "longer last dimension ⇒ bigger diameter ⇒ worse PoA: {p_large} vs {p_small}"
        );
    }

    #[test]
    fn open_grid_has_no_wraparound() {
        let t = TorusGrid::open(&[4, 4], 2).unwrap();
        assert!(t.state().validate().is_ok());
        // Lemma 3.5: d(x, y) ≥ maxᵢ |xᵢ − yᵢ| for every pair.
        let dm = metrics::distance_matrix(t.state().graph());
        for x in 0..t.n() as NodeId {
            for y in 0..t.n() as NodeId {
                if dm[x as usize][y as usize] != ncg_graph::INFINITY {
                    assert!(
                        dm[x as usize][y as usize] >= t.open_distance_lb(x, y),
                        "open bound violated at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn open_grid_is_smaller_than_closed() {
        // The open grid drops the wrap-around paths, so with the same
        // parameters it has strictly fewer vertices and edges than the
        // closed torus.
        let open = TorusGrid::open(&[4, 4], 2).unwrap();
        let closed = TorusGrid::closed(&[4, 4], 2).unwrap();
        assert!(open.n() < closed.n());
        assert!(open.state().graph().edge_count() < closed.state().graph().edge_count());
    }

    #[test]
    fn open_grid_corner_has_low_degree() {
        // Corners of the open grid have a single incident path
        // (degree 1 at stretch interior ends ≥ 1), in contrast to the
        // vertex-transitive closed torus where intersections all have
        // degree 2^d.
        let t = TorusGrid::open(&[4, 4], 2).unwrap();
        let min_deg = (0..t.n() as NodeId)
            .filter(|&v| t.is_intersection(v))
            .map(|v| t.state().graph().degree(v))
            .min()
            .unwrap();
        let max_deg = (0..t.n() as NodeId)
            .filter(|&v| t.is_intersection(v))
            .map(|v| t.state().graph().degree(v))
            .max()
            .unwrap();
        assert!(min_deg < max_deg, "open grids are not vertex-transitive");
        assert!(max_deg <= 4);
    }

    #[test]
    fn three_dimensional_torus_builds() {
        let t = TorusGrid::closed(&[2, 2, 3], 2).unwrap();
        assert_eq!(t.intersections, 2 * 2 * 2 * 3);
        assert_eq!(t.n(), 24 * (1 + 4));
        for id in 0..t.intersections as NodeId {
            assert_eq!(t.state().graph().degree(id), 8, "2^d edges per intersection");
        }
        assert!(metrics::is_connected(t.state().graph()));
        assert!(t.state().validate().is_ok());
    }
}
