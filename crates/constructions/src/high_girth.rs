//! Lemma 3.2 / Theorem 4.3: high-girth equilibria.
//!
//! When the girth is `≥ 2k + 2`, every radius-`k` view is a tree, so
//! a player cannot see any redundancy: buying edges barely reduces her
//! usage cost (each saved unit of eccentricity requires exponentially
//! many edges — Lemma 3.6), and removing an edge disconnects her view.
//! With `q`-quasi-regular graphs this yields `PoA = Ω(n^{1/(2k−2)})`
//! (density-based, MaxNCG, `α ≥ 1`) and the Theorem 4.3 bound for
//! SumNCG (`α ≥ kn`).
//!
//! The paper cites the algebraic Lazebnik–Ustimenko–Woldar graphs; we
//! generate quasi-regular high-girth graphs randomly (see
//! `ncg_graph::generators::high_girth` and DESIGN.md §4) and certify
//! the equilibrium property directly.

use ncg_core::{GameSpec, GameState};
use ncg_graph::generators::{high_girth, HighGirthParams};
use ncg_graph::metrics;
use ncg_solver::is_lke_par;
use rand::Rng;

/// A high-girth equilibrium candidate: the graph, the ownership
/// profile (uniformly random owner per edge), and its verified girth.
#[derive(Debug, Clone)]
pub struct HighGirthGadget {
    /// The game profile.
    pub state: GameState,
    /// Exact girth of the graph (`None` for forests).
    pub girth: Option<u32>,
    /// The degree target used.
    pub q: u32,
}

/// Builds a quasi-`q`-regular gadget with girth `≥ 2k + 2` on `n`
/// vertices — the Lemma 3.2 shape for knowledge radius `k`.
///
/// # Errors
/// Propagates generator parameter errors.
pub fn build<R: Rng + ?Sized>(
    n: usize,
    q: u32,
    k: u32,
    rng: &mut R,
) -> Result<HighGirthGadget, ncg_graph::GraphError> {
    let girth_target = 2 * k + 2;
    let graph = high_girth(HighGirthParams::new(n, q, girth_target), rng)?;
    let girth = metrics::girth(&graph);
    if let Some(g) = girth {
        assert!(g >= girth_target, "generator violated its girth contract: {g} < {girth_target}");
    }
    let state = GameState::from_graph_random_ownership(&graph, rng);
    Ok(HighGirthGadget { state, girth, q })
}

impl HighGirthGadget {
    /// Certifies the LKE property with exact best responses (players
    /// fanned out over the work-stealing pool).
    pub fn certify(&self, spec: &GameSpec) -> bool {
        is_lke_par(&self.state, spec)
    }

    /// The PoA this gadget witnesses (social cost / optimum).
    pub fn witnessed_poa(&self, spec: &GameSpec) -> Option<f64> {
        let sc = ncg_core::social::social_cost(&self.state, spec)?;
        Some(sc / ncg_core::social::optimum_cost(self.state.n(), spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn views_are_trees_when_girth_exceeds_2k_plus_1() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let gadget = build(80, 3, 2, &mut rng).unwrap();
        assert!(gadget.girth.unwrap_or(u32::MAX) >= 6);
        // Every radius-2 view of a girth-≥6 graph is a tree:
        // |E| = |V| − 1 within the view.
        for u in (0..80u32).step_by(9) {
            let view = ncg_core::PlayerView::build(&gadget.state, u, 2);
            assert_eq!(view.sub.graph.edge_count(), view.len() - 1, "view of {u} is not a tree");
        }
    }

    #[test]
    fn certification_for_large_alpha() {
        // Lemma 3.2 regime: with q = 3 the increase in building cost
        // exceeds any usage saving once α ≥ k − 1-ish; pick α large to
        // be safely inside.
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let gadget = build(60, 3, 2, &mut rng).unwrap();
        assert!(gadget.certify(&GameSpec::max(5.0, 2)));
    }

    #[test]
    fn sumncg_certification_for_alpha_at_least_kn() {
        // Theorem 4.3 regime: α ≥ k·n pins every strategy in place.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let n = 40;
        let k = 2;
        let gadget = build(n, 3, k, &mut rng).unwrap();
        let alpha = (k as usize * n) as f64;
        assert!(gadget.certify(&GameSpec::sum(alpha, k)));
    }

    #[test]
    fn witnessed_poa_is_finite_and_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let gadget = build(50, 3, 2, &mut rng).unwrap();
        let poa = gadget.witnessed_poa(&GameSpec::max(5.0, 2)).unwrap();
        assert!(poa > 1.0 && poa.is_finite());
    }
}
