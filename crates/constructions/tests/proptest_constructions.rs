//! Property-based tests for the lower-bound constructions: structural
//! invariants over the whole parameter space, not just the paper's
//! instances.

use ncg_constructions::{cycle, TorusGrid};
use ncg_core::GameSpec;
use ncg_graph::{metrics, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The closed torus always matches its counting formulas:
    /// `N = 2∏δᵢ` intersections, `n = N(1 + 2^{d−1}(ℓ−1))` vertices,
    /// `N·2^{d−1}·ℓ` edges, degree `2^d` at intersections and `2` at
    /// interiors, ownership valid, and the graph connected.
    #[test]
    fn torus_counting_formulas(
        d1 in 2u32..4,
        d2 in 2u32..5,
        ell in 1u32..4,
    ) {
        let t = TorusGrid::closed(&[d1, d2], ell).unwrap();
        let n_inter = 2 * d1 as usize * d2 as usize;
        prop_assert_eq!(t.intersections, n_inter);
        prop_assert_eq!(t.n(), n_inter * (1 + 2 * (ell as usize - 1)));
        prop_assert_eq!(t.state().graph().edge_count(), n_inter * 2 * ell as usize);
        prop_assert!(t.state().validate().is_ok());
        prop_assert!(metrics::is_connected(t.state().graph()));
        for v in 0..t.n() as NodeId {
            let deg = t.state().graph().degree(v);
            if t.is_intersection(v) {
                prop_assert_eq!(deg, 4);
                if ell > 1 {
                    prop_assert_eq!(t.state().bought(v), 0);
                }
            } else {
                prop_assert_eq!(deg, 2);
                let b = t.state().bought(v);
                prop_assert!((1..=2).contains(&b));
            }
        }
    }

    /// Lemma 3.3 holds across the parameter space (non-strict form;
    /// see the note in `torus.rs`), spot-checked from vertex 0.
    #[test]
    fn torus_lemma_33_from_origin(
        d1 in 2u32..4,
        d2 in 2u32..5,
        ell in 1u32..3,
    ) {
        let t = TorusGrid::closed(&[d1, d2], ell).unwrap();
        let mut buf = ncg_graph::bfs::DistanceBuffer::new();
        ncg_graph::bfs::bfs(t.state().graph(), 0, &mut buf);
        for y in 0..t.n() as NodeId {
            prop_assert!(buf.dist(y) >= t.coordinate_distance_lb(0, y),
                "y = {}", y);
        }
    }

    /// Corollary 3.4 across the parameter space: diameter ≥ ℓ·δ_d
    /// (δ_d = the *last* dimension as built).
    #[test]
    fn torus_corollary_34(
        d1 in 2u32..4,
        d2 in 2u32..6,
        ell in 1u32..3,
    ) {
        // The corollary's bound is ℓ·δ_d for the largest dimension;
        // our constructor keeps dimension order, so make δ₂ ≥ δ₁ to
        // match the paper's convention.
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let t = TorusGrid::closed(&[lo, hi], ell).unwrap();
        let diam = metrics::diameter(t.state().graph()).unwrap();
        prop_assert!(diam >= t.diameter_lower_bound());
    }

    /// F_h of an intersection vertex has exactly 2^d members for
    /// every h ≤ the safe radius (no coordinate collisions).
    #[test]
    fn torus_f_h_cardinality(d2 in 3u32..6, h in 1u32..3) {
        let t = TorusGrid::closed(&[3, d2], 2).unwrap();
        let fh = t.f_h(0, h);
        prop_assert_eq!(fh.len(), 4, "h = {}", h);
        // All F_h members are at distance ≥ h (Lemma 3.3) and the
        // coordinate bound is exactly h for them.
        for &v in &fh {
            prop_assert_eq!(t.coordinate_distance_lb(0, v), h);
        }
    }

    /// The cycle gadget certifies exactly when Lemma 3.1's premise
    /// holds, over a modest random parameter box. (The premise is
    /// sufficient, not necessary, so only the positive direction is
    /// asserted; the negative direction is exercised at extreme
    /// parameters in the unit tests.)
    #[test]
    fn cycle_certifies_inside_premise(n in 8usize..24, k in 1u32..4, bump in 0.0f64..3.0) {
        let alpha = (k as f64 - 1.0) + bump; // α ≥ k − 1 by construction
        if cycle::lemma_premise(n, alpha, k) {
            prop_assert!(cycle::certify(n, &GameSpec::max(alpha, k)),
                "n = {}, α = {}, k = {}", n, alpha, k);
        }
    }
}
