//! Radius-`k` balls, induced subgraphs and graph powers.
//!
//! The *view* of a player in the locality-based game is the subgraph
//! induced by her radius-`k` ball. This module provides the graph-level
//! machinery; the game layer (`ncg-core`) adds ownership on top.

use crate::bfs::{bfs_bounded, DistanceBuffer};
use crate::{Graph, NodeId, INFINITY};

/// The radius-`k` ball around `center`: all nodes at distance `≤ k`,
/// sorted by node id.
pub fn ball(g: &Graph, center: NodeId, k: u32) -> Vec<NodeId> {
    let mut out = Vec::new();
    ball_into(g, center, k, &mut DistanceBuffer::with_capacity(g.node_count()), &mut out);
    out
}

/// [`ball`] writing into caller-provided scratch: `out` receives the
/// sorted ball, `buf` is the BFS workspace. Nothing allocates after
/// warm-up.
pub fn ball_into(
    g: &Graph,
    center: NodeId,
    k: u32,
    buf: &mut DistanceBuffer,
    out: &mut Vec<NodeId>,
) {
    bfs_bounded(g, center, k, buf);
    out.clear();
    out.extend_from_slice(buf.visited());
    out.sort_unstable();
}

/// An induced subgraph together with the mapping between local and
/// global node identifiers.
///
/// Local ids are dense `0..nodes.len()`, assigned in ascending global
/// order, so `local_to_global` is sorted and `global_to_local` can use
/// binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgraph {
    /// The induced graph over local identifiers.
    pub graph: Graph,
    /// `local_to_global[l]` = global id of local node `l` (sorted).
    pub local_to_global: Vec<NodeId>,
}

impl Subgraph {
    /// Translates a global id to the local id, if present.
    #[inline]
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.local_to_global.binary_search(&global).ok().map(|i| i as NodeId)
    }

    /// Translates a local id back to the global id.
    ///
    /// # Panics
    /// Panics if `local` is out of range.
    #[inline]
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.local_to_global[local as usize]
    }

    /// Number of nodes in the subgraph.
    #[inline]
    pub fn len(&self) -> usize {
        self.local_to_global.len()
    }

    /// Whether the subgraph is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.local_to_global.is_empty()
    }
}

/// The subgraph of `g` induced by `nodes` (global ids, any order,
/// duplicates ignored).
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Subgraph {
    let mut out = Subgraph { graph: Graph::new(0), local_to_global: Vec::new() };
    induced_subgraph_into(g, nodes, &mut out);
    out
}

/// [`induced_subgraph`] overwriting an existing [`Subgraph`], reusing
/// its node-map and adjacency allocations (see [`Graph::reset`]).
pub fn induced_subgraph_into(g: &Graph, nodes: &[NodeId], out: &mut Subgraph) {
    out.local_to_global.clear();
    out.local_to_global.extend_from_slice(nodes);
    out.local_to_global.sort_unstable();
    out.local_to_global.dedup();
    out.graph.reset(out.local_to_global.len());
    for (lu, &gu) in out.local_to_global.iter().enumerate() {
        for &gv in g.neighbors(gu) {
            if gv > gu {
                if let Ok(lv) = out.local_to_global.binary_search(&gv) {
                    out.graph.add_edge(lu as NodeId, lv as NodeId);
                }
            }
        }
    }
}

/// The view of `center` at radius `k`: induced subgraph of the ball.
pub fn view_subgraph(g: &Graph, center: NodeId, k: u32) -> Subgraph {
    induced_subgraph(g, &ball(g, center, k))
}

/// [`view_subgraph`] writing into caller scratch: `ball_buf` holds the
/// sorted ball on return, `buf` is the BFS workspace, `out` the
/// overwritten subgraph. The allocation-free path of the incremental
/// view rebuild.
pub fn view_subgraph_into(
    g: &Graph,
    center: NodeId,
    k: u32,
    buf: &mut DistanceBuffer,
    ball_buf: &mut Vec<NodeId>,
    out: &mut Subgraph,
) {
    ball_into(g, center, k, buf, ball_buf);
    induced_subgraph_into(g, ball_buf, out);
}

/// The `h`-th power of `g`: same nodes, an edge wherever the distance
/// in `g` is between 1 and `h`.
///
/// `power(g, 1)` is `g` itself (a copy). `power(g, 0)` is edgeless.
/// Used by the Section 5.3 best-response reduction, where domination
/// in the `(h−1)`-th power encodes "eccentricity ≤ h after buying".
pub fn power(g: &Graph, h: u32) -> Graph {
    let n = g.node_count();
    let mut p = Graph::new(n);
    if h == 0 {
        return p;
    }
    let mut buf = DistanceBuffer::with_capacity(n);
    for u in 0..n as NodeId {
        bfs_bounded(g, u, h, &mut buf);
        for &v in buf.visited() {
            if v > u {
                p.add_edge(u, v);
            }
        }
    }
    p
}

/// Distances from `center` restricted to its radius-`k` ball, as a map
/// from the ball (sorted) to distances.
///
/// Convenience used by the game layer to reason about frontier nodes
/// (`d = k` exactly) without retaining the whole buffer.
pub fn ball_distances(g: &Graph, center: NodeId, k: u32) -> Vec<(NodeId, u32)> {
    let mut buf = DistanceBuffer::with_capacity(g.node_count());
    bfs_bounded(g, center, k, &mut buf);
    let mut out: Vec<(NodeId, u32)> = buf.visited().iter().map(|&v| (v, buf.dist(v))).collect();
    out.sort_unstable_by_key(|&(v, _)| v);
    debug_assert!(out.iter().all(|&(_, d)| d != INFINITY));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics;

    #[test]
    fn ball_on_path_is_an_interval() {
        let g = generators::path(10);
        assert_eq!(ball(&g, 5, 2), vec![3, 4, 5, 6, 7]);
        assert_eq!(ball(&g, 0, 3), vec![0, 1, 2, 3]);
        assert_eq!(ball(&g, 9, 0), vec![9]);
    }

    #[test]
    fn ball_radius_larger_than_diameter_is_everything() {
        let g = generators::cycle(6);
        assert_eq!(ball(&g, 2, 100).len(), 6);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = generators::cycle(6);
        let sub = induced_subgraph(&g, &[0, 1, 2, 4]);
        assert_eq!(sub.len(), 4);
        // Edges 0-1 and 1-2 survive; 4 is isolated inside the subgraph.
        assert_eq!(sub.graph.edge_count(), 2);
        let l4 = sub.to_local(4).unwrap();
        assert_eq!(sub.graph.degree(l4), 0);
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn induced_subgraph_dedups_and_sorts() {
        let g = generators::path(5);
        let sub = induced_subgraph(&g, &[3, 1, 3, 1, 2]);
        assert_eq!(sub.local_to_global, vec![1, 2, 3]);
        assert_eq!(sub.graph.edge_count(), 2);
    }

    #[test]
    fn local_global_round_trip() {
        let g = generators::grid(3, 3);
        let sub = view_subgraph(&g, 4, 1);
        for l in 0..sub.len() as NodeId {
            let gid = sub.to_global(l);
            assert_eq!(sub.to_local(gid), Some(l));
        }
        assert_eq!(sub.to_local(999), None);
    }

    #[test]
    fn view_subgraph_of_center_of_path() {
        let g = generators::path(9);
        let sub = view_subgraph(&g, 4, 2);
        assert_eq!(sub.local_to_global, vec![2, 3, 4, 5, 6]);
        assert_eq!(metrics::diameter(&sub.graph), Some(4));
    }

    #[test]
    fn power_zero_and_one() {
        let g = generators::cycle(5);
        assert_eq!(power(&g, 0).edge_count(), 0);
        assert_eq!(power(&g, 1), g);
    }

    #[test]
    fn power_two_of_cycle_six() {
        let g = generators::cycle(6);
        let p2 = power(&g, 2);
        // Each node gains its two distance-2 neighbours: degree 4.
        assert!(p2.nodes().all(|u| p2.degree(u) == 4));
        assert_eq!(p2.edge_count(), 12);
    }

    #[test]
    fn power_saturates_to_complete_graph() {
        let g = generators::path(5);
        let p = power(&g, 4);
        assert_eq!(p.edge_count(), 5 * 4 / 2);
    }

    #[test]
    fn power_of_disconnected_graph_stays_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let p = power(&g, 10);
        assert!(p.has_edge(0, 1));
        assert!(p.has_edge(2, 3));
        assert!(!p.has_edge(1, 2));
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn into_variants_match_fresh_builds() {
        let g = generators::grid(4, 4);
        let mut buf = DistanceBuffer::new();
        let mut ball_buf = Vec::new();
        let mut sub = Subgraph { graph: crate::Graph::new(0), local_to_global: Vec::new() };
        for center in 0..g.node_count() as NodeId {
            for k in 0..=4 {
                ball_into(&g, center, k, &mut buf, &mut ball_buf);
                assert_eq!(ball_buf, ball(&g, center, k), "ball center={center} k={k}");
                view_subgraph_into(&g, center, k, &mut buf, &mut ball_buf, &mut sub);
                assert_eq!(sub, view_subgraph(&g, center, k), "view center={center} k={k}");
                assert!(sub.graph.validate().is_ok());
            }
        }
    }

    #[test]
    fn induced_subgraph_into_reuses_allocation_across_shrink() {
        let g = generators::cycle(8);
        let mut sub = induced_subgraph(&g, &[0, 1, 2, 3, 4, 5]);
        induced_subgraph_into(&g, &[6, 7, 0], &mut sub);
        assert_eq!(sub, induced_subgraph(&g, &[6, 7, 0]));
    }

    #[test]
    fn ball_distances_reports_frontier() {
        let g = generators::path(10);
        let bd = ball_distances(&g, 5, 2);
        assert_eq!(bd, vec![(3, 2), (4, 1), (5, 0), (6, 1), (7, 2)]);
    }
}
