//! Frozen CSR (compressed sparse row) graph representation.
//!
//! [`Graph`]'s `Vec<Vec<NodeId>>` adjacency is ideal for the mutation
//! the dynamics performs, but its per-node heap allocations scatter
//! the neighbour lists across the heap. The all-pairs BFS sweeps of
//! the metrics layer and the best-response reduction read the whole
//! adjacency once per source — a contiguous offsets/targets layout
//! ([`CsrGraph`]) keeps those sweeps inside a single prefetch-friendly
//! allocation. Freezing is `O(n + m)`; the benches in
//! `ncg-bench/benches/substrates.rs` quantify the BFS win.

use crate::bfs::{Adjacency, DistanceBuffer};
#[cfg(test)]
use crate::INFINITY;
use crate::{Graph, NodeId};

/// An immutable graph in CSR layout: neighbours of `u` are
/// `targets[offsets[u] .. offsets[u+1]]`, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Freezes a [`Graph`] into CSR form.
    pub fn from_graph(g: &Graph) -> Self {
        let mut csr = CsrGraph { offsets: Vec::new(), targets: Vec::new() };
        csr.refreeze(g);
        csr
    }

    /// Re-freezes `g` into this CSR, reusing the offsets/targets
    /// allocations of the previous freeze — the per-cell epilogue path
    /// of the sweep engine, which measures one state per repetition ×
    /// `(α, k)` cell and would otherwise re-allocate the layout every
    /// time. Equivalent to `*self = CsrGraph::from_graph(g)`.
    pub fn refreeze(&mut self, g: &Graph) {
        let n = g.node_count();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.targets.clear();
        self.targets.reserve(2 * g.edge_count());
        self.offsets.push(0);
        for u in 0..n as NodeId {
            self.targets.extend_from_slice(g.neighbors(u));
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Builds a CSR directly from an undirected edge list, never
    /// materialising a [`Graph`]. See [`CsrGraph::rebuild_from_edges`].
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut csr = CsrGraph::default();
        csr.rebuild_from_edges(n, edges);
        csr
    }

    /// Re-builds this CSR from an undirected edge list via a two-pass
    /// counting sort, reusing the offsets/targets allocations.
    ///
    /// This is the scale-tier constructor: the SoA game state stores
    /// strategies as a flat CSR and derives the adjacency by streaming
    /// `(owner, target)` pairs through here every round — `O(n + m)`
    /// with two contiguous passes, no per-node `Vec` in sight.
    /// Duplicate pairs (a double-bought edge — both endpoints purchase
    /// it) and either orientation are tolerated: rows come out sorted
    /// ascending and deduplicated, identical to freezing the
    /// equivalent [`Graph`].
    ///
    /// # Panics
    /// Panics (debug assertion) on self-loops or endpoints `≥ n`.
    pub fn rebuild_from_edges(&mut self, n: usize, edges: &[(NodeId, NodeId)]) {
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, v) in edges {
            debug_assert!(u != v, "self-loop {u}");
            debug_assert!((u as usize) < n && (v as usize) < n, "endpoint out of range");
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.targets.clear();
        self.targets.resize(2 * edges.len(), 0);
        // Fill using offsets[u] as the row cursor; afterwards each
        // offsets[u] has advanced to the start of row u+1, so one
        // backward shift restores the offset array without a separate
        // cursor allocation.
        for &(u, v) in edges {
            self.targets[self.offsets[u as usize] as usize] = v;
            self.offsets[u as usize] += 1;
            self.targets[self.offsets[v as usize] as usize] = u;
            self.offsets[v as usize] += 1;
        }
        for u in (1..=n).rev() {
            self.offsets[u] = self.offsets[u - 1];
        }
        self.offsets[0] = 0;
        // Sort rows, then compact out duplicate targets in place
        // (write cursor never passes the read cursor).
        let mut write = 0usize;
        let mut row_start = 0usize;
        for u in 0..n {
            let row_end = self.offsets[u + 1] as usize;
            self.targets[row_start..row_end].sort_unstable();
            let new_start = write;
            let mut last: Option<NodeId> = None;
            for i in row_start..row_end {
                let t = self.targets[i];
                if last != Some(t) {
                    self.targets[write] = t;
                    write += 1;
                    last = Some(t);
                }
            }
            row_start = row_end;
            self.offsets[u] = new_start as u32;
            self.offsets[u + 1] = write as u32;
        }
        self.targets.truncate(write);
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbour slice of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Full BFS from `source` on the CSR layout; same contract as
    /// [`crate::bfs::bfs`]. Returns the largest finite distance.
    pub fn bfs(&self, source: NodeId, buf: &mut DistanceBuffer) -> u32 {
        crate::bfs::bfs(self, source, buf)
    }

    /// Bounded BFS (distance `≤ limit`) on the CSR layout; same
    /// contract as [`crate::bfs::bfs_bounded`].
    pub fn bfs_bounded(&self, source: NodeId, limit: u32, buf: &mut DistanceBuffer) -> u32 {
        crate::bfs::bfs_bounded(self, source, limit, buf)
    }

    /// Bounded **multi-source** BFS on the CSR layout; same contract
    /// as [`crate::bfs::bfs_multi_bounded`] — these methods are pure
    /// conveniences over the one generic kernel in `crate::bfs`, not
    /// separate drivers.
    pub fn bfs_multi_bounded(
        &self,
        sources: &[NodeId],
        limit: u32,
        buf: &mut DistanceBuffer,
    ) -> u32 {
        crate::bfs::bfs_multi_bounded(self, sources, limit, buf)
    }

    /// All-pairs distance matrix via per-source BFS (sequential; the
    /// caller parallelises over chunks if desired).
    pub fn distance_matrix(&self) -> Vec<Vec<u32>> {
        let n = self.node_count();
        let mut buf = DistanceBuffer::with_capacity(n);
        (0..n as NodeId)
            .map(|u| {
                self.bfs(u, &mut buf);
                buf.distances().to_vec()
            })
            .collect()
    }

    /// Eccentricity of `u` (`None` when `u` does not reach everyone).
    pub fn eccentricity(&self, u: NodeId, buf: &mut DistanceBuffer) -> Option<u32> {
        let ecc = self.bfs(u, buf);
        if buf.visited().len() == self.node_count() {
            Some(ecc)
        } else {
            None
        }
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn adjacent(&self, u: NodeId) -> &[NodeId] {
        self.neighbors(u)
    }
}

impl Default for CsrGraph {
    /// The CSR of the empty graph — a valid freeze target for
    /// [`CsrGraph::refreeze`], so scratch bundles can derive `Default`.
    fn default() -> Self {
        CsrGraph { offsets: vec![0], targets: Vec::new() }
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::generators;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn csr_preserves_structure() {
        let g = generators::grid(4, 5);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for u in 0..g.node_count() as NodeId {
            assert_eq!(csr.neighbors(u), g.neighbors(u));
            assert_eq!(csr.degree(u), g.degree(u));
        }
    }

    #[test]
    fn csr_bfs_matches_graph_bfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp(60, 0.08, &mut rng).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mut a = DistanceBuffer::new();
        let mut b = DistanceBuffer::new();
        for u in 0..g.node_count() as NodeId {
            let ea = bfs(&g, u, &mut a);
            let eb = csr.bfs(u, &mut b);
            assert_eq!(ea, eb);
            assert_eq!(a.distances(), b.distances());
        }
    }

    #[test]
    fn csr_bounded_bfs_truncates() {
        let g = generators::path(12);
        let csr = CsrGraph::from_graph(&g);
        let mut buf = DistanceBuffer::new();
        let reached = csr.bfs_bounded(0, 4, &mut buf);
        assert_eq!(reached, 4);
        assert_eq!(buf.dist(4), 4);
        assert_eq!(buf.dist(5), INFINITY);
    }

    #[test]
    fn csr_distance_matrix_matches_metrics() {
        let g = generators::cycle(11);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.distance_matrix(), crate::metrics::distance_matrix(&g));
    }

    #[test]
    fn csr_eccentricity_and_disconnection() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mut buf = DistanceBuffer::new();
        assert_eq!(csr.eccentricity(0, &mut buf), None);
        let c = CsrGraph::from_graph(&generators::cycle(8));
        assert_eq!(c.eccentricity(0, &mut buf), Some(4));
    }

    #[test]
    fn csr_multi_bounded_matches_graph_kernel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::gnp(50, 0.07, &mut rng).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let mut a = DistanceBuffer::new();
        let mut b = DistanceBuffer::new();
        for (sources, limit) in
            [(vec![0u32, 7, 7, 23], 2u32), (vec![3], 0), (vec![], 5), (vec![11, 40], u32::MAX)]
        {
            let da = crate::bfs::bfs_multi_bounded(&g, &sources, limit, &mut a);
            let db = csr.bfs_multi_bounded(&sources, limit, &mut b);
            assert_eq!(da, db);
            assert_eq!(a.distances(), b.distances());
            assert_eq!(a.visited(), b.visited());
        }
    }

    #[test]
    fn refreeze_reuses_and_matches_fresh_freeze() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut csr = CsrGraph::from_graph(&generators::path(40));
        for p in [0.03, 0.08, 0.2] {
            let g = generators::gnp(35, p, &mut rng).unwrap();
            csr.refreeze(&g);
            assert_eq!(csr, CsrGraph::from_graph(&g));
        }
        // Shrinking to a smaller graph is fine too.
        csr.refreeze(&generators::path(3));
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr, CsrGraph::from_graph(&generators::path(3)));
    }

    #[test]
    fn from_edges_matches_graph_freeze() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for p in [0.0, 0.05, 0.15] {
            let mut edges = Vec::new();
            let mut check = ChaCha8Rng::seed_from_u64(rng.random());
            let mut gen = check.clone();
            generators::gnp_edges(70, p, &mut gen, &mut edges).unwrap();
            let g = generators::gnp(70, p, &mut check).unwrap();
            assert_eq!(CsrGraph::from_edges(70, &edges), CsrGraph::from_graph(&g));
        }
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        // Duplicates (double-bought edges) and mixed orientation: the
        // CSR must come out identical to the clean graph's freeze.
        let edges = [(3u32, 1u32), (1, 3), (0, 2), (2, 1), (4, 0), (0, 4), (0, 4)];
        let csr = CsrGraph::from_edges(5, &edges);
        let g = Graph::from_edges(5, [(1, 3), (0, 2), (1, 2), (0, 4)]).unwrap();
        assert_eq!(csr, CsrGraph::from_graph(&g));
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors(0), &[2, 4]);
    }

    #[test]
    fn rebuild_from_edges_reuses_allocations() {
        let mut csr = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        csr.rebuild_from_edges(3, &[(0, 2)]);
        assert_eq!(csr, CsrGraph::from_edges(3, &[(0, 2)]));
        csr.rebuild_from_edges(0, &[]);
        assert_eq!(csr.node_count(), 0);
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
