//! Graphviz DOT export, used by the figure binaries to emit the
//! torus-construction illustrations (Figures 1–2) and for debugging.

use std::fmt::Write as _;

use crate::{Graph, NodeId};

/// Options controlling DOT output.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name in the `graph <name> { … }` header.
    pub name: String,
    /// Optional per-node labels (global id → label); nodes missing
    /// from the map use their numeric id.
    pub labels: Vec<(NodeId, String)>,
    /// Node ids to highlight (rendered filled); used to mark views.
    pub highlight: Vec<NodeId>,
}

/// Renders `g` in Graphviz DOT syntax.
pub fn to_dot(g: &Graph, opts: &DotOptions) -> String {
    let name = if opts.name.is_empty() { "g" } else { &opts.name };
    let mut out = String::with_capacity(32 + 16 * g.edge_count());
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    let mut sorted_labels = opts.labels.clone();
    sorted_labels.sort_unstable_by_key(|&(id, _)| id);
    let mut highlight = opts.highlight.clone();
    highlight.sort_unstable();
    for u in g.nodes() {
        let mut attrs: Vec<String> = Vec::new();
        if let Ok(i) = sorted_labels.binary_search_by_key(&u, |&(id, _)| id) {
            attrs.push(format!("label=\"{}\"", sorted_labels[i].1));
        }
        if highlight.binary_search(&u).is_ok() {
            attrs.push("style=filled, fillcolor=lightgray".to_string());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {u};");
        } else {
            let _ = writeln!(out, "  {u} [{}];", attrs.join(", "));
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_edges() {
        let g = generators::cycle(4);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph g {"));
        for line in ["0 -- 1;", "1 -- 2;", "2 -- 3;", "0 -- 3;"] {
            assert!(dot.contains(line), "missing {line} in:\n{dot}");
        }
    }

    #[test]
    fn dot_renders_labels_and_highlights() {
        let g = generators::path(3);
        let opts =
            DotOptions { name: "p3".into(), labels: vec![(1, "(0,0)".into())], highlight: vec![2] };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("graph p3 {"));
        assert!(dot.contains("1 [label=\"(0,0)\"];"));
        assert!(dot.contains("2 [style=filled"));
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot(&Graph::new(0), &DotOptions::default());
        assert!(dot.contains("graph g {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
