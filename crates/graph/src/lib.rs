//! # ncg-graph — graph substrate for locality-based network creation games
//!
//! This crate provides the graph machinery that every other crate in the
//! `ncg` workspace builds on:
//!
//! * [`Graph`] — a compact, allocation-conscious undirected simple graph
//!   with sorted adjacency lists and `u32` node identifiers.
//! * [`bfs`] — breadth-first search kernels with caller-provided scratch
//!   buffers so the hot path allocates nothing per call.
//! * [`batch`] — bit-parallel batched BFS: 64 sources per machine word,
//!   one traversal answering a whole lane group's distance queries,
//!   bit-identical per lane to the scalar kernels.
//! * [`metrics`] — eccentricity, diameter, radius, girth, connectivity,
//!   with rayon-parallel all-pairs variants.
//! * [`view`] — radius-`k` balls, induced subgraphs with node mappings
//!   (the *views* of the locality-based game), and graph powers.
//! * [`generators`] — uniform random trees (Prüfer sequences),
//!   Erdős–Rényi `G(n,p)`, high-girth quasi-regular graphs, and the
//!   classic deterministic families (cycle, path, star, clique, grid).
//! * [`dot`] — Graphviz DOT export for debugging and figure generation.
//!
//! The crate is deliberately free of game semantics: ownership of edges,
//! costs and equilibria live in `ncg-core`.
//!
//! ## Example
//!
//! ```
//! use ncg_graph::{Graph, metrics};
//!
//! let g = ncg_graph::generators::cycle(8);
//! assert_eq!(g.node_count(), 8);
//! assert_eq!(g.edge_count(), 8);
//! assert_eq!(metrics::diameter(&g), Some(4));
//! assert_eq!(metrics::girth(&g), Some(8));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod bfs;
pub mod csr;
pub mod dot;
mod error;
pub mod generators;
mod graph;
pub mod metrics;
pub mod view;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{Graph, NodeId};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::batch::{BatchDistances, BatchScratch};
    pub use crate::bfs::DistanceBuffer;
    pub use crate::generators;
    pub use crate::metrics;
    pub use crate::view::{ball, induced_subgraph, power, Subgraph};
    pub use crate::{Graph, GraphError, NodeId};
}

/// Sentinel distance denoting "unreachable" in BFS outputs.
///
/// Chosen as `u32::MAX` so that saturating arithmetic keeps unreachable
/// vertices unreachable and comparisons order it after every real
/// distance.
pub const INFINITY: u32 = u32::MAX;
