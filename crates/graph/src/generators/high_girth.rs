//! Randomized quasi-regular graphs of prescribed girth.
//!
//! Lemma 3.2 of the paper uses the algebraic Lazebnik–Ustimenko–Woldar
//! graphs: `q`-regular, girth `≥ g`, with `Ω(n^{1+1/(g−4)})` edges.
//! Reproducing the algebraic construction is out of scope (and
//! unnecessary: the equilibrium argument only needs girth and
//! near-regularity, see DESIGN.md §4), so we generate them greedily:
//! repeatedly propose a uniformly random pair of vertices of degree
//! `< q` and accept it iff their current distance is `≥ g − 1`, which
//! guarantees every created cycle has length `≥ g`. Girth is verified
//! exactly by the caller via [`crate::metrics::girth`].

use rand::Rng;

use crate::bfs::{bfs_bounded, DistanceBuffer};
use crate::{Graph, GraphError, NodeId, INFINITY};

/// Parameters for [`high_girth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighGirthParams {
    /// Number of vertices.
    pub n: usize,
    /// Target degree (the generator never exceeds it).
    pub q: u32,
    /// Minimum girth of the output graph.
    pub girth: u32,
    /// Give up after this many consecutive rejected proposals.
    pub patience: usize,
}

impl HighGirthParams {
    /// Sensible defaults: patience scales with `n·q` so the greedy
    /// phase saturates before giving up.
    pub fn new(n: usize, q: u32, girth: u32) -> Self {
        HighGirthParams { n, q, girth, patience: 50 * n * q as usize + 1000 }
    }
}

/// Generates a quasi-`q`-regular graph with girth `≥ params.girth`.
///
/// The result is connected whenever the parameters allow it (a final
/// pass links components with girth-respecting edges; if that is
/// impossible the largest component is returned as-is via the `Err`
/// channel being *not* used — connectivity is the caller's check).
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] for `girth < 3` or `q < 2`.
pub fn high_girth<R: Rng + ?Sized>(
    params: HighGirthParams,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let HighGirthParams { n, q, girth, patience } = params;
    if girth < 3 {
        return Err(GraphError::InvalidParameter(format!("girth {girth} must be ≥ 3")));
    }
    if q < 2 {
        return Err(GraphError::InvalidParameter(format!("degree target q = {q} must be ≥ 2")));
    }
    let mut g = Graph::new(n);
    if n < 2 {
        return Ok(g);
    }
    let mut buf = DistanceBuffer::with_capacity(n);
    // Start from a Hamiltonian path so the graph is connected; a path
    // is acyclic, hence girth-safe.
    for u in 1..n {
        g.add_edge((u - 1) as NodeId, u as NodeId);
    }
    let mut misses = 0usize;
    while misses < patience {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        if u == v || g.degree(u) >= q as usize || g.degree(v) >= q as usize || g.has_edge(u, v) {
            misses += 1;
            continue;
        }
        // Adding (u,v) creates cycles of length d(u,v)+1; require
        // d(u,v) ≥ girth − 1. Bounded BFS to depth girth−2 suffices.
        bfs_bounded(&g, u, girth - 2, &mut buf);
        if buf.dist(v) != INFINITY {
            misses += 1;
            continue;
        }
        g.add_edge(u, v);
        misses = 0;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn respects_girth_and_degree_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (n, q, girth) in [(60, 3, 6), (120, 4, 6), (200, 3, 8)] {
            let g = high_girth(HighGirthParams::new(n, q, girth), &mut rng).unwrap();
            assert!(g.nodes().all(|u| g.degree(u) <= q as usize), "degree cap violated");
            if let Some(actual) = metrics::girth(&g) {
                assert!(actual >= girth, "girth {actual} < required {girth} (n={n}, q={q})");
            }
            assert!(metrics::is_connected(&g));
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn denser_than_a_tree() {
        // The whole point of Lemma 3.2 is extra density: the generator
        // must add a meaningful number of chords beyond the spanning
        // path.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let n = 150;
        let g = high_girth(HighGirthParams::new(n, 3, 6), &mut rng).unwrap();
        assert!(
            g.edge_count() > n + n / 10,
            "only {} edges on {n} nodes: generator saturated too early",
            g.edge_count()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(high_girth(HighGirthParams::new(10, 3, 2), &mut rng).is_err());
        assert!(high_girth(HighGirthParams::new(10, 1, 5), &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = HighGirthParams::new(80, 3, 6);
        let a = high_girth(p, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = high_girth(p, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = high_girth(HighGirthParams::new(1, 3, 5), &mut rng).unwrap();
        assert_eq!(g.node_count(), 1);
        let g = high_girth(HighGirthParams::new(2, 2, 5), &mut rng).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
