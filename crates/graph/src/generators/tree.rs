//! Uniform random labelled trees via Prüfer sequences.
//!
//! The paper's Table I inputs are trees "picked uniformly at random
//! from the set of all possible trees on n vertices". By Cayley's
//! formula there are `n^{n−2}` labelled trees and the Prüfer bijection
//! maps each sequence in `{0,…,n−1}^{n−2}` to exactly one of them, so
//! sampling the sequence uniformly samples the tree uniformly.

use rand::Rng;

use crate::{Graph, NodeId};

/// Decodes a Prüfer sequence into the corresponding labelled tree on
/// `seq.len() + 2` nodes.
///
/// Linear-time decoding with a degree array and a moving pointer (the
/// "online minimum leaf" trick): no priority queue needed.
///
/// # Panics
/// Panics if any entry of `seq` is `≥ seq.len() + 2`.
pub fn tree_from_pruefer(seq: &[NodeId]) -> Graph {
    let n = seq.len() + 2;
    let mut g = Graph::new(n);
    let mut degree = vec![1u32; n];
    for &x in seq {
        assert!((x as usize) < n, "Prüfer entry {x} out of range for n = {n}");
        degree[x as usize] += 1;
    }
    // `ptr` scans for the smallest leaf; `leaf` is the current leaf,
    // which may drop below `ptr` when decrementing a degree creates a
    // new smaller leaf.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in seq {
        g.add_edge(leaf as NodeId, x);
        degree[x as usize] -= 1;
        if degree[x as usize] == 1 && (x as usize) < ptr {
            leaf = x as usize;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // Two leaves remain; the smaller is `leaf`, the other is the last
    // node of degree 1 above `ptr`.
    let mut last = n - 1;
    while degree[last] != 1 || last == leaf {
        last -= 1;
    }
    g.add_edge(leaf as NodeId, last as NodeId);
    g
}

/// Samples a tree uniformly at random from all `n^{n−2}` labelled
/// trees on `n` nodes (`n ≥ 1`).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    match n {
        0 => Graph::new(0),
        1 => Graph::new(1),
        2 => {
            let mut g = Graph::new(2);
            g.add_edge(0, 1);
            g
        }
        _ => {
            let seq: Vec<NodeId> = (0..n - 2).map(|_| rng.random_range(0..n as NodeId)).collect();
            tree_from_pruefer(&seq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pruefer_decoding_known_example() {
        // Classic example: sequence [3,3,3,4] on n=6 gives the tree
        // with edges {0-3, 1-3, 2-3, 3-4, 4-5}.
        let g = tree_from_pruefer(&[3, 3, 3, 4]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 3), (1, 3), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn pruefer_star_sequence() {
        // All-zero sequence gives the star centered at 0.
        let g = tree_from_pruefer(&[0, 0, 0]);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn pruefer_path_sequence() {
        // Sequence [1,2,...,n-2] decodes to the path 0-1-2-...-(n-1).
        let g = tree_from_pruefer(&[1, 2, 3]);
        assert_eq!(metrics::diameter(&g), Some(4));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3) && g.has_edge(3, 4));
    }

    #[test]
    fn random_trees_are_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for n in [1usize, 2, 3, 5, 17, 64, 200] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(metrics::is_connected(&g), "n = {n}");
            assert_eq!(metrics::girth(&g), None, "trees are acyclic, n = {n}");
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_tree(50, &mut ChaCha8Rng::seed_from_u64(7));
        let b = random_tree(50, &mut ChaCha8Rng::seed_from_u64(7));
        let c = random_tree(50, &mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn pruefer_bijection_exhaustive_n4() {
        // All 16 sequences on n=4 decode to 16 distinct trees = 4^{4-2}.
        let mut seen = std::collections::HashSet::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let g = tree_from_pruefer(&[a, b]);
                assert_eq!(g.edge_count(), 3);
                assert!(metrics::is_connected(&g));
                let mut edges: Vec<_> = g.edges().collect();
                edges.sort_unstable();
                seen.insert(edges);
            }
        }
        assert_eq!(seen.len(), 16, "Prüfer decoding must be injective");
    }

    #[test]
    fn uniformity_smoke_test_n4() {
        // Over many samples each of the 16 labelled trees on 4 nodes
        // should appear with roughly equal frequency.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut counts = std::collections::HashMap::new();
        let samples = 16_000;
        for _ in 0..samples {
            let g = random_tree(4, &mut rng);
            let mut edges: Vec<_> = g.edges().collect();
            edges.sort_unstable();
            *counts.entry(edges).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 16);
        let expected = samples / 16;
        for (tree, count) in counts {
            assert!(
                (count as f64) > 0.7 * expected as f64 && (count as f64) < 1.3 * expected as f64,
                "tree {tree:?} has count {count}, expected ≈ {expected}"
            );
        }
    }
}
