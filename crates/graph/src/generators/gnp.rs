//! Erdős–Rényi `G(n, p)` random graphs.

use rand::Rng;

use crate::metrics::is_connected;
use crate::{Graph, GraphError, NodeId};

/// Core Batagelj–Brandes sampler: emits each sampled pair `(u, v)`
/// with `u < v` through `emit` instead of committing to a container.
/// Both [`gnp`] (adjacency-list `Graph`) and [`gnp_edges`] (flat edge
/// stream for CSR construction at the million-node scale tier) drive
/// this one loop, so they consume the RNG identically and sample the
/// same graph for the same seed.
fn gnp_visit<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
    mut emit: impl FnMut(NodeId, NodeId),
) -> Result<(), GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter(format!(
            "edge probability p = {p} must lie in [0, 1]"
        )));
    }
    if n < 2 || p == 0.0 {
        return Ok(());
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                emit(u, v);
            }
        }
        return Ok(());
    }
    // Batagelj–Brandes: walk the linearised strictly-upper-triangular
    // pair index with geometric jumps of parameter p.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.random::<f64>();
        // ceil(log(r)/log(1-p)) - 1 skipped pairs.
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            emit(w as NodeId, v as NodeId);
        }
    }
    Ok(())
}

/// Samples `G(n, p)`: every unordered pair becomes an edge
/// independently with probability `p`.
///
/// Uses the geometric skipping method of Batagelj–Brandes, which runs
/// in `O(n + m)` expected time instead of `O(n²)` — the sweep binaries
/// sample thousands of these.
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    let mut g = Graph::new(n);
    gnp_visit(n, p, rng, |u, v| {
        g.add_edge(u, v);
    })?;
    Ok(g)
}

/// Samples `G(n, p)` as a flat edge stream, appending `(u, v)` pairs
/// (`u < v`, generation order) to `out` without ever materialising a
/// per-node `Vec<Vec<_>>` adjacency.
///
/// This is the scale-tier entry point: at `n = 10^6`, avg degree 10,
/// the `Graph` intermediate would cost a million heap allocations
/// before the first round even starts; the edge stream feeds
/// [`crate::CsrGraph::from_edges`] directly. Samples the same graph as
/// [`gnp`] for the same RNG state (both drive one shared sampler).
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] unless `0 ≤ p ≤ 1`.
pub fn gnp_edges<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
    out: &mut Vec<(NodeId, NodeId)>,
) -> Result<(), GraphError> {
    gnp_visit(n, p, rng, |u, v| out.push((u, v)))
}

/// Samples `G(n, p)` conditioned on connectivity: resamples until the
/// graph is connected, exactly as the paper does ("any remaining
/// unconnected graph was discarded and regenerated from scratch").
///
/// # Errors
/// Returns [`GraphError::InvalidParameter`] if `p` is out of range or
/// if `max_attempts` resamples all fail (the parameters are below the
/// connectivity threshold).
pub fn gnp_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = gnp(n, p, rng)?;
        if is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter(format!(
        "G({n}, {p}) produced no connected sample in {max_attempts} attempts"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn p_zero_is_edgeless_and_p_one_is_complete() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).unwrap().edge_count(), 45);
    }

    #[test]
    fn invalid_p_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(gnp(10, -0.1, &mut rng).is_err());
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn edge_count_concentrates_around_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 200;
        let p = 0.1;
        let trials = 30;
        let mean: f64 =
            (0..trials).map(|_| gnp(n, p, &mut rng).unwrap().edge_count() as f64).sum::<f64>()
                / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} too far from expectation {expected}"
        );
    }

    #[test]
    fn samples_are_valid_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let g = gnp(64, 0.07, &mut rng).unwrap();
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn connected_variant_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = gnp_connected(100, 0.06, 1000, &mut rng).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn connected_variant_gives_up_below_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // p = 0 can never be connected for n ≥ 2.
        assert!(gnp_connected(10, 0.0, 5, &mut rng).is_err());
    }

    #[test]
    fn edge_stream_matches_gnp_for_same_seed() {
        for (n, p) in [(0, 0.5), (1, 0.5), (40, 0.0), (7, 1.0), (80, 0.07), (200, 0.03)] {
            let mut rng_a = ChaCha8Rng::seed_from_u64(11);
            let mut rng_b = ChaCha8Rng::seed_from_u64(11);
            let g = gnp(n, p, &mut rng_a).unwrap();
            let mut edges = Vec::new();
            gnp_edges(n, p, &mut rng_b, &mut edges).unwrap();
            assert_eq!(edges.len(), g.edge_count(), "G({n}, {p})");
            let rebuilt = Graph::from_edges(n, edges.iter().copied()).unwrap();
            for u in 0..n as NodeId {
                assert_eq!(rebuilt.neighbors(u), g.neighbors(u));
            }
            // Both paths must leave the RNG in the same state.
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
        }
    }

    #[test]
    fn edge_stream_rejects_invalid_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut out = Vec::new();
        assert!(gnp_edges(10, -0.1, &mut rng, &mut out).is_err());
        assert!(gnp_edges(10, f64::NAN, &mut rng, &mut out).is_err());
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(gnp(0, 0.5, &mut rng).unwrap().node_count(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).unwrap().edge_count(), 0);
        // n=1 is trivially connected.
        assert!(gnp_connected(1, 0.5, 1, &mut rng).is_ok());
    }
}
