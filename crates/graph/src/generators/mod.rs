//! Graph generators: the workload classes of the paper's Section 5.2
//! plus the deterministic families used by the lower-bound gadgets.
//!
//! * [`random_tree`] — trees drawn uniformly from the `n^{n−2}` labelled
//!   trees via random Prüfer sequences (Table I inputs).
//! * [`gnp`] / [`gnp_connected`] — Erdős–Rényi `G(n,p)`; the connected
//!   variant resamples until connected, as the paper does (Table II).
//! * [`gnp_edges`] — the same sampler as a flat edge stream, for the
//!   million-node scale tier that builds CSR state directly.
//! * [`high_girth`] — randomized quasi-`q`-regular graphs of girth
//!   `≥ g`, the stand-in for the Lazebnik–Ustimenko extremal graphs of
//!   Lemma 3.2 (see DESIGN.md §4 for why the substitution is faithful).
//! * [`cycle`], [`path`], [`star`], [`complete`], [`grid`] — classics.

mod classic;
mod gnp;
mod high_girth;
mod tree;

pub use classic::{complete, cycle, grid, path, star};
pub use gnp::{gnp, gnp_connected, gnp_edges};
pub use high_girth::{high_girth, HighGirthParams};
pub use tree::{random_tree, tree_from_pruefer};
