//! Deterministic graph families.

use crate::{Graph, NodeId};

/// The path `0 − 1 − … − (n−1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge((u - 1) as NodeId, u as NodeId);
    }
    g
}

/// The cycle `0 − 1 − … − (n−1) − 0`. For `n < 3` this degenerates to
/// a path (no multi-edges / self-loops are created).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge((n - 1) as NodeId, 0);
    }
    g
}

/// The star with center `0` and leaves `1..n`.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(0, u as NodeId);
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as NodeId, v as NodeId);
        }
    }
    g
}

/// The `rows × cols` grid graph; node `(r, c)` has id `r·cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as NodeId;
            if c + 1 < cols {
                g.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols as NodeId);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(2).edge_count(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn tiny_cycles_degenerate_to_paths() {
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(1).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::diameter(&g), Some(5));
        assert_eq!(metrics::girth(&g), Some(4));
    }
}
