use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Node identifier: a dense index in `0..node_count()`.
///
/// `u32` keeps adjacency lists half the size of `usize` on 64-bit
/// targets, which matters for the cache behaviour of the BFS kernels
/// (see the workspace performance notes in `DESIGN.md`).
pub type NodeId = u32;

/// A compact undirected simple graph.
///
/// Invariants (upheld by every mutator, checked by `debug_assert!` and
/// the property tests):
///
/// * adjacency lists are strictly sorted (no duplicates, no self-loops);
/// * `adj[u].contains(v)` iff `adj[v].contains(u)`;
/// * `edge_count` equals half the sum of all degrees.
///
/// Node identifiers are dense: `0..n`. The game layer (`ncg-core`)
/// identifies players with nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates a graph with `n` nodes and the given edges.
    ///
    /// Duplicate edges are collapsed; `(u, v)` and `(v, u)` denote the
    /// same edge. Returns an error on self-loops or out-of-range ids.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.check_node(u)?;
            g.check_node(v)?;
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            g.add_edge(u, v);
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids, `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// The sorted neighbour list of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree, `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Whether the edge `(u, v)` is present.
    ///
    /// Binary search on the sorted adjacency list of the lower-degree
    /// endpoint: `O(log min(deg u, deg v))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Inserts the edge `(u, v)`. Returns `true` if the edge was new.
    ///
    /// Self-loops are rejected (returns `false`) so that bulk callers
    /// (generators) can stay branch-light; fallible construction should
    /// go through [`Graph::from_edges`].
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let pos = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.adj[u as usize].insert(pos, v);
        let pos = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("adjacency symmetry violated: (v,u) present without (u,v)");
        self.adj[v as usize].insert(pos, u);
        self.edge_count += 1;
        true
    }

    /// Removes the edge `(u, v)`. Returns `true` if the edge existed.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let pos = match self.adj[u as usize].binary_search(&v) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        self.adj[u as usize].remove(pos);
        let pos = self.adj[v as usize]
            .binary_search(&u)
            .expect("adjacency symmetry violated: (u,v) present without (v,u)");
        self.adj[v as usize].remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Clears the graph to `n` edgeless nodes, **reusing** the
    /// adjacency allocations of the previous contents.
    ///
    /// The incremental view rebuild (`ncg-core`'s `PlayerView::rebuild`)
    /// calls this once per refreshed player; after warm-up no adjacency
    /// list reallocates unless the ball grew past its previous size.
    pub fn reset(&mut self, n: usize) {
        for nbrs in &mut self.adj {
            nbrs.clear();
        }
        self.adj.resize_with(n, Vec::new);
        self.edge_count = 0;
    }

    /// Overwrites `self` with a copy of `src`, reusing `self`'s
    /// allocations where possible (the `Vec::clone_from` discipline,
    /// which derived `Clone` does not provide).
    pub fn copy_from(&mut self, src: &Graph) {
        self.adj.clone_from(&src.adj);
        self.edge_count = src.edge_count;
    }

    /// Iterator over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Removes every edge incident to `u`, returning the former
    /// neighbour list. The node itself stays (as an isolated vertex).
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn detach_node(&mut self, u: NodeId) -> Vec<NodeId> {
        let nbrs = std::mem::take(&mut self.adj[u as usize]);
        for &v in &nbrs {
            let pos = self.adj[v as usize]
                .binary_search(&u)
                .expect("adjacency symmetry violated in detach_node");
            self.adj[v as usize].remove(pos);
        }
        self.edge_count -= nbrs.len();
        nbrs
    }

    /// Validates a node id.
    #[inline]
    pub fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if (u as usize) < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { node: u, node_count: self.adj.len() })
        }
    }

    /// Exhaustive internal-consistency check, used by tests and
    /// `debug_assert!` call sites in the game layer.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.adj.len();
        let mut count = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency list of {u} not strictly sorted"));
            }
            for &v in nbrs {
                if v as usize >= n {
                    return Err(format!("neighbour {v} of {u} out of range"));
                }
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.adj[v as usize].binary_search(&(u as NodeId)).is_err() {
                    return Err(format!("asymmetric edge ({u}, {v})"));
                }
            }
            count += nbrs.len();
        }
        if count % 2 != 0 {
            return Err("odd total degree".into());
        }
        if count / 2 != self.edge_count {
            return Err(format!(
                "edge_count {} disagrees with degree sum {}",
                self.edge_count,
                count / 2
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn reset_clears_edges_and_resizes() {
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        g.reset(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 0);
        assert!(g.validate().is_ok());
        g.add_edge(4, 5);
        g.reset(2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut dst = Graph::from_edges(3, [(0, 2)]).unwrap();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert!(dst.validate().is_ok());
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0), "re-adding the reverse edge must be a no-op");
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.edge_count(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = Graph::new(3);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(Graph::from_edges(3, [(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn from_edges_collapses_duplicates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (1, 2), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn from_edges_checks_range() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, node_count: 2 })
        ));
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert_eq!(g.edge_count(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn detach_node_removes_all_incident_edges() {
        let mut g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let nbrs = g.detach_node(0);
        assert_eq!(nbrs, vec![1, 2, 3]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.has_edge(1, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterator_yields_canonical_pairs() {
        let g = Graph::from_edges(4, [(2, 1), (3, 0), (0, 1)]).unwrap();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn has_edge_handles_out_of_range_gracefully() {
        let g = Graph::new(2);
        assert!(!g.has_edge(0, 9));
        assert!(!g.has_edge(9, 0));
    }
}
