use std::fmt;

/// Errors produced by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier was at least `node_count()`.
    NodeOutOfRange {
        /// The offending identifier.
        node: u32,
        /// The number of nodes in the graph at the time of the call.
        node_count: usize,
    },
    /// A self-loop `(u, u)` was requested; the game graphs are simple.
    SelfLoop(u32),
    /// A generator was asked for an impossible parameter combination.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop ({u}, {u}) not allowed"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, node_count: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        assert!(GraphError::SelfLoop(2).to_string().contains("self-loop"));
        assert!(GraphError::InvalidParameter("p must be in [0,1]".into())
            .to_string()
            .contains("p must be in [0,1]"));
    }
}
