//! Breadth-first search kernels.
//!
//! The BFS routines here are the hot path of the whole workspace: every
//! eccentricity, view extraction and dominating-set reduction bottoms
//! out in them. They therefore follow the allocation discipline from
//! the performance guides: a caller-provided [`DistanceBuffer`] is
//! reused across calls and nothing is allocated per BFS.
//!
//! All entry points — single-source, bounded, skipping, multi-source,
//! on [`Graph`] or on [`crate::CsrGraph`] — are thin wrappers around
//! **one** batched frontier sweep (the private `bfs_kernel`),
//! parameterised over the [`Adjacency`] representation. View extraction
//! (`crate::view::ball`), the deviation evaluator's multi-source
//! sweeps, and the best-response reduction's per-source APSP therefore
//! share a single, monomorphised inner loop (see `DESIGN.md` §5).

use crate::{Graph, NodeId, INFINITY};

/// Sentinel for "no node": larger than any valid [`NodeId`] (ids are
/// dense indices `< node_count ≤ u32::MAX`).
const NO_NODE: NodeId = u32::MAX;

/// Anything that can hand out a neighbour slice per node — the minimal
/// adjacency interface the BFS kernel needs. Implemented by the
/// mutable [`Graph`] and the frozen [`crate::CsrGraph`], so every BFS
/// flavour is written once and monomorphised per representation.
pub trait Adjacency {
    /// Number of nodes (ids are `0..node_count()`).
    fn node_count(&self) -> usize;
    /// Sorted neighbour slice of `u`.
    fn adjacent(&self, u: NodeId) -> &[NodeId];
}

impl Adjacency for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn adjacent(&self, u: NodeId) -> &[NodeId] {
        self.neighbors(u)
    }
}

/// Reusable scratch space for BFS.
///
/// Holds the distance array and the FIFO queue. Create one per thread
/// (or per long-lived computation) and pass it to the kernels; the
/// buffer grows on demand and never shrinks.
#[derive(Debug, Clone, Default)]
pub struct DistanceBuffer {
    /// Distances from the last source; `INFINITY` = unreachable.
    dist: Vec<u32>,
    /// FIFO queue storage (head index advances instead of popping).
    queue: Vec<NodeId>,
}

impl DistanceBuffer {
    /// Creates an empty buffer; it will size itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        DistanceBuffer { dist: Vec::with_capacity(n), queue: Vec::with_capacity(n) }
    }

    /// Distance from the most recent source to `u` (`INFINITY` if
    /// unreachable).
    ///
    /// # Panics
    /// Panics if no BFS has been run or `u` is out of range for the
    /// graph of the last run.
    #[inline]
    pub fn dist(&self, u: NodeId) -> u32 {
        self.dist[u as usize]
    }

    /// The full distance slice of the most recent run.
    #[inline]
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Nodes visited by the most recent run, in BFS (non-decreasing
    /// distance) order. The source is first.
    #[inline]
    pub fn visited(&self) -> &[NodeId] {
        &self.queue
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, INFINITY);
        self.queue.clear();
    }
}

/// The one batched frontier sweep every public BFS flavour wraps:
/// multi-source, distance-bounded, with an optional deleted node.
///
/// * `sources` are enqueued at distance 0 (duplicates and the skipped
///   node are ignored);
/// * nodes at distance `> limit` keep `INFINITY` and are not enqueued;
/// * `skip` (pass [`NO_NODE`] for none) keeps `INFINITY` and its
///   incident edges are ignored — the `H ∖ {u}` semantics of the
///   best-response reduction.
///
/// Returns the largest finite distance reached (0 when no source is
/// usable).
fn bfs_kernel<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    limit: u32,
    skip: NodeId,
    buf: &mut DistanceBuffer,
) -> u32 {
    buf.reset(g.node_count());
    for &s in sources {
        debug_assert!((s as usize) < g.node_count(), "BFS source out of range");
        if s != skip && buf.dist[s as usize] != 0 {
            buf.dist[s as usize] = 0;
            buf.queue.push(s);
        }
    }
    let mut head = 0usize;
    let mut max_d = 0u32;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        let du = buf.dist[u as usize];
        max_d = du;
        if du == limit {
            continue;
        }
        for &v in g.adjacent(u) {
            if buf.dist[v as usize] == INFINITY && v != skip {
                buf.dist[v as usize] = du + 1;
                buf.queue.push(v);
            }
        }
    }
    max_d
}

/// Full BFS from `source`; fills `buf` with distances in `g`.
///
/// Returns the eccentricity of `source` within its connected component
/// (the largest finite distance reached).
pub fn bfs<A: Adjacency + ?Sized>(g: &A, source: NodeId, buf: &mut DistanceBuffer) -> u32 {
    bfs_kernel(g, &[source], u32::MAX, NO_NODE, buf)
}

/// BFS from `source` truncated at distance `limit` (inclusive).
///
/// Nodes at distance `> limit` keep distance `INFINITY` and are not
/// enqueued, which is exactly the semantics needed for radius-`k`
/// views. Returns the largest distance reached (`≤ limit`).
pub fn bfs_bounded<A: Adjacency + ?Sized>(
    g: &A,
    source: NodeId,
    limit: u32,
    buf: &mut DistanceBuffer,
) -> u32 {
    bfs_kernel(g, &[source], limit, NO_NODE, buf)
}

/// BFS from `source` on `g` *with node `skip` deleted*.
///
/// Used by the best-response reduction, which works on `H ∖ {u}`
/// without materialising the node-deleted graph. `skip` keeps distance
/// `INFINITY` and its incident edges are ignored.
pub fn bfs_skipping<A: Adjacency + ?Sized>(
    g: &A,
    source: NodeId,
    skip: NodeId,
    buf: &mut DistanceBuffer,
) -> u32 {
    debug_assert_ne!(source, skip, "cannot BFS from the deleted node");
    bfs_kernel(g, &[source], u32::MAX, skip, buf)
}

/// BFS from a *set* of sources (multi-source BFS), all at distance 0.
///
/// Returns the largest finite distance reached. Empty source sets
/// yield an all-`INFINITY` buffer and return 0.
pub fn bfs_multi<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    buf: &mut DistanceBuffer,
) -> u32 {
    bfs_kernel(g, sources, u32::MAX, NO_NODE, buf)
}

/// Multi-source BFS truncated at distance `limit` (inclusive): the
/// batched frontier sweep behind view extraction and the incremental
/// best-response APSP. Duplicate sources are harmless; with `limit` 0
/// only the sources themselves are visited.
pub fn bfs_multi_bounded<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    limit: u32,
    buf: &mut DistanceBuffer,
) -> u32 {
    bfs_kernel(g, sources, limit, NO_NODE, buf)
}

/// Single-pair shortest-path distance (early-exit BFS).
///
/// On success the buffer is consistent with the return value: the
/// found target has its distance recorded and appears in
/// [`DistanceBuffer::visited`] (nodes *behind* it are still
/// unexplored — the early exit is the point).
pub fn distance(g: &Graph, u: NodeId, v: NodeId, buf: &mut DistanceBuffer) -> u32 {
    if u == v {
        buf.reset(g.node_count());
        buf.dist[u as usize] = 0;
        buf.queue.push(u);
        return 0;
    }
    buf.reset(g.node_count());
    buf.dist[u as usize] = 0;
    buf.queue.push(u);
    let mut head = 0usize;
    while head < buf.queue.len() {
        let x = buf.queue[head];
        head += 1;
        let dx = buf.dist[x as usize];
        for &y in g.neighbors(x) {
            if buf.dist[y as usize] == INFINITY {
                buf.dist[y as usize] = dx + 1;
                buf.queue.push(y);
                if y == v {
                    return dx + 1;
                }
            }
        }
    }
    INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = generators::path(6);
        let mut buf = DistanceBuffer::new();
        let ecc = bfs(&g, 0, &mut buf);
        assert_eq!(ecc, 5);
        for v in 0..6 {
            assert_eq!(buf.dist(v), v);
        }
    }

    #[test]
    fn bfs_marks_unreachable_as_infinity() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let mut buf = DistanceBuffer::new();
        let ecc = bfs(&g, 0, &mut buf);
        assert_eq!(ecc, 1);
        assert_eq!(buf.dist(2), INFINITY);
        assert_eq!(buf.dist(3), INFINITY);
    }

    #[test]
    fn bounded_bfs_truncates_at_limit() {
        let g = generators::path(10);
        let mut buf = DistanceBuffer::new();
        let reached = bfs_bounded(&g, 0, 3, &mut buf);
        assert_eq!(reached, 3);
        assert_eq!(buf.dist(3), 3);
        assert_eq!(buf.dist(4), INFINITY);
        assert_eq!(buf.visited().len(), 4);
    }

    #[test]
    fn bounded_bfs_visits_in_distance_order() {
        let g = generators::cycle(9);
        let mut buf = DistanceBuffer::new();
        bfs_bounded(&g, 0, 2, &mut buf);
        let ds: Vec<u32> = buf.visited().iter().map(|&v| buf.dist(v)).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(buf.visited()[0], 0);
    }

    #[test]
    fn skipping_bfs_deletes_the_node() {
        // path 0-1-2-3; skipping 1 disconnects 0 from {2,3}.
        let g = generators::path(4);
        let mut buf = DistanceBuffer::new();
        bfs_skipping(&g, 0, 1, &mut buf);
        assert_eq!(buf.dist(0), 0);
        assert_eq!(buf.dist(1), INFINITY);
        assert_eq!(buf.dist(2), INFINITY);
        // cycle 0-1-2-3-0; skipping 1 still reaches 2 the long way.
        let c = generators::cycle(4);
        bfs_skipping(&c, 0, 1, &mut buf);
        assert_eq!(buf.dist(2), 2);
        assert_eq!(buf.dist(3), 1);
        assert_eq!(buf.dist(1), INFINITY);
    }

    #[test]
    fn multi_source_bfs_takes_nearest_source() {
        let g = generators::path(7);
        let mut buf = DistanceBuffer::new();
        let maxd = bfs_multi(&g, &[0, 6], &mut buf);
        assert_eq!(maxd, 3);
        assert_eq!(buf.dist(3), 3);
        assert_eq!(buf.dist(5), 1);
    }

    #[test]
    fn multi_source_bfs_with_empty_sources() {
        let g = generators::path(3);
        let mut buf = DistanceBuffer::new();
        assert_eq!(bfs_multi(&g, &[], &mut buf), 0);
        assert!(buf.distances().iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn multi_source_handles_duplicate_sources() {
        let g = generators::path(4);
        let mut buf = DistanceBuffer::new();
        bfs_multi(&g, &[2, 2, 2], &mut buf);
        assert_eq!(buf.dist(0), 2);
        assert_eq!(buf.visited().len(), 4);
    }

    #[test]
    fn multi_bounded_limit_zero_visits_sources_only() {
        let g = generators::path(8);
        let mut buf = DistanceBuffer::new();
        let maxd = bfs_multi_bounded(&g, &[2, 5], 0, &mut buf);
        assert_eq!(maxd, 0);
        assert_eq!(buf.visited(), &[2, 5]);
        assert_eq!(buf.dist(3), INFINITY);
        assert_eq!(buf.dist(2), 0);
    }

    #[test]
    fn multi_bounded_with_duplicate_sources_truncates() {
        let g = generators::path(9);
        let mut buf = DistanceBuffer::new();
        let maxd = bfs_multi_bounded(&g, &[4, 4, 0], 2, &mut buf);
        assert_eq!(maxd, 2);
        assert_eq!(buf.dist(4), 0);
        assert_eq!(buf.dist(6), 2);
        assert_eq!(buf.dist(7), INFINITY);
        // node 4 enqueued once despite the duplicate source.
        assert_eq!(buf.visited().iter().filter(|&&v| v == 4).count(), 1);
    }

    #[test]
    fn multi_bounded_on_disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]).unwrap();
        let mut buf = DistanceBuffer::new();
        let maxd = bfs_multi_bounded(&g, &[0], 10, &mut buf);
        assert_eq!(maxd, 2);
        assert_eq!(buf.dist(3), INFINITY);
        assert_eq!(buf.dist(4), INFINITY);
        // A source per component covers both sides; the isolate stays ∞.
        bfs_multi_bounded(&g, &[0, 4], 10, &mut buf);
        assert_eq!(buf.dist(5), 1);
        assert_eq!(buf.dist(3), INFINITY);
    }

    #[test]
    fn pairwise_distance_matches_full_bfs() {
        let g = generators::cycle(11);
        let mut buf = DistanceBuffer::new();
        for u in 0..11 {
            let mut full = DistanceBuffer::new();
            bfs(&g, u, &mut full);
            for v in 0..11 {
                assert_eq!(distance(&g, u, v, &mut buf), full.dist(v), "({u},{v})");
            }
        }
    }

    #[test]
    fn distance_records_the_found_target_in_the_buffer() {
        // Regression: the early exit used to return without writing the
        // target's distance, leaving `buf.dist(v)` at INFINITY and
        // `visited()` missing `v` for a reachable target.
        let g = generators::path(6);
        let mut buf = DistanceBuffer::new();
        let d = distance(&g, 0, 4, &mut buf);
        assert_eq!(d, 4);
        assert_eq!(buf.dist(4), d, "buffer must agree with the return value");
        assert!(buf.visited().contains(&4), "found target must be recorded as visited");
        // Identity pairs are consistent too.
        assert_eq!(distance(&g, 3, 3, &mut buf), 0);
        assert_eq!(buf.dist(3), 0);
        assert_eq!(buf.visited(), &[3]);
    }

    #[test]
    fn distance_unreachable_is_infinity() {
        let g = Graph::new(3);
        let mut buf = DistanceBuffer::new();
        assert_eq!(distance(&g, 0, 2, &mut buf), INFINITY);
        assert_eq!(distance(&g, 1, 1, &mut buf), 0);
    }

    #[test]
    fn buffer_is_reusable_across_graphs_of_different_size() {
        let mut buf = DistanceBuffer::new();
        bfs(&generators::path(10), 0, &mut buf);
        bfs(&generators::path(3), 0, &mut buf);
        assert_eq!(buf.distances().len(), 3);
    }
}
