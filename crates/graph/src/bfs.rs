//! Breadth-first search kernels.
//!
//! The BFS routines here are the hot path of the whole workspace: every
//! eccentricity, view extraction and dominating-set reduction bottoms
//! out in them. They therefore follow the allocation discipline from
//! the performance guides: a caller-provided [`DistanceBuffer`] is
//! reused across calls and nothing is allocated per BFS.

use crate::{Graph, NodeId, INFINITY};

/// Reusable scratch space for BFS.
///
/// Holds the distance array and the FIFO queue. Create one per thread
/// (or per long-lived computation) and pass it to the kernels; the
/// buffer grows on demand and never shrinks.
#[derive(Debug, Clone, Default)]
pub struct DistanceBuffer {
    /// Distances from the last source; `INFINITY` = unreachable.
    dist: Vec<u32>,
    /// FIFO queue storage (head index advances instead of popping).
    queue: Vec<NodeId>,
}

impl DistanceBuffer {
    /// Creates an empty buffer; it will size itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer pre-sized for graphs with `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        DistanceBuffer { dist: Vec::with_capacity(n), queue: Vec::with_capacity(n) }
    }

    /// Distance from the most recent source to `u` (`INFINITY` if
    /// unreachable).
    ///
    /// # Panics
    /// Panics if no BFS has been run or `u` is out of range for the
    /// graph of the last run.
    #[inline]
    pub fn dist(&self, u: NodeId) -> u32 {
        self.dist[u as usize]
    }

    /// The full distance slice of the most recent run.
    #[inline]
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Nodes visited by the most recent run, in BFS (non-decreasing
    /// distance) order. The source is first.
    #[inline]
    pub fn visited(&self) -> &[NodeId] {
        &self.queue
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, INFINITY);
        self.queue.clear();
    }

    // -- crate-internal plumbing for alternative BFS drivers (CSR) --

    /// Crate-internal: reset for an `n`-node graph.
    #[inline]
    pub(crate) fn reset_pub(&mut self, n: usize) {
        self.reset(n);
    }

    /// Crate-internal: enqueue `s` at distance 0.
    #[inline]
    pub(crate) fn seed(&mut self, s: NodeId) {
        if self.dist[s as usize] != 0 {
            self.dist[s as usize] = 0;
            self.queue.push(s);
        }
    }

    /// Crate-internal: FIFO pop via an external head cursor.
    #[inline]
    pub(crate) fn pop(&mut self, head: &mut usize) -> Option<NodeId> {
        let u = self.queue.get(*head).copied();
        if u.is_some() {
            *head += 1;
        }
        u
    }

    /// Crate-internal: relax `v` to distance `d` if undiscovered.
    #[inline]
    pub(crate) fn relax(&mut self, v: NodeId, d: u32) {
        if self.dist[v as usize] == INFINITY {
            self.dist[v as usize] = d;
            self.queue.push(v);
        }
    }
}

/// Full BFS from `source`; fills `buf` with distances in `g`.
///
/// Returns the eccentricity of `source` within its connected component
/// (the largest finite distance reached).
pub fn bfs(g: &Graph, source: NodeId, buf: &mut DistanceBuffer) -> u32 {
    bfs_bounded(g, source, u32::MAX, buf)
}

/// BFS from `source` truncated at distance `limit` (inclusive).
///
/// Nodes at distance `> limit` keep distance `INFINITY` and are not
/// enqueued, which is exactly the semantics needed for radius-`k`
/// views. Returns the largest distance reached (`≤ limit`).
pub fn bfs_bounded(g: &Graph, source: NodeId, limit: u32, buf: &mut DistanceBuffer) -> u32 {
    debug_assert!((source as usize) < g.node_count(), "BFS source out of range");
    buf.reset(g.node_count());
    buf.dist[source as usize] = 0;
    buf.queue.push(source);
    let mut head = 0usize;
    let mut max_d = 0u32;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        let du = buf.dist[u as usize];
        max_d = du;
        if du == limit {
            continue;
        }
        for &v in g.neighbors(u) {
            if buf.dist[v as usize] == INFINITY {
                buf.dist[v as usize] = du + 1;
                buf.queue.push(v);
            }
        }
    }
    max_d
}

/// BFS from `source` on `g` *with node `skip` deleted*.
///
/// Used by the best-response reduction, which works on `H ∖ {u}`
/// without materialising the node-deleted graph. `skip` keeps distance
/// `INFINITY` and its incident edges are ignored.
pub fn bfs_skipping(g: &Graph, source: NodeId, skip: NodeId, buf: &mut DistanceBuffer) -> u32 {
    debug_assert_ne!(source, skip, "cannot BFS from the deleted node");
    buf.reset(g.node_count());
    buf.dist[source as usize] = 0;
    buf.queue.push(source);
    let mut head = 0usize;
    let mut max_d = 0u32;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        let du = buf.dist[u as usize];
        max_d = du;
        for &v in g.neighbors(u) {
            if v != skip && buf.dist[v as usize] == INFINITY {
                buf.dist[v as usize] = du + 1;
                buf.queue.push(v);
            }
        }
    }
    max_d
}

/// BFS from a *set* of sources (multi-source BFS), all at distance 0.
///
/// Returns the largest finite distance reached. Empty source sets
/// yield an all-`INFINITY` buffer and return 0.
pub fn bfs_multi(g: &Graph, sources: &[NodeId], buf: &mut DistanceBuffer) -> u32 {
    buf.reset(g.node_count());
    for &s in sources {
        debug_assert!((s as usize) < g.node_count(), "BFS source out of range");
        if buf.dist[s as usize] != 0 {
            buf.dist[s as usize] = 0;
            buf.queue.push(s);
        }
    }
    let mut head = 0usize;
    let mut max_d = 0u32;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        let du = buf.dist[u as usize];
        max_d = du;
        for &v in g.neighbors(u) {
            if buf.dist[v as usize] == INFINITY {
                buf.dist[v as usize] = du + 1;
                buf.queue.push(v);
            }
        }
    }
    max_d
}

/// Single-pair shortest-path distance (early-exit BFS).
pub fn distance(g: &Graph, u: NodeId, v: NodeId, buf: &mut DistanceBuffer) -> u32 {
    if u == v {
        return 0;
    }
    buf.reset(g.node_count());
    buf.dist[u as usize] = 0;
    buf.queue.push(u);
    let mut head = 0usize;
    while head < buf.queue.len() {
        let x = buf.queue[head];
        head += 1;
        let dx = buf.dist[x as usize];
        for &y in g.neighbors(x) {
            if buf.dist[y as usize] == INFINITY {
                if y == v {
                    return dx + 1;
                }
                buf.dist[y as usize] = dx + 1;
                buf.queue.push(y);
            }
        }
    }
    INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = generators::path(6);
        let mut buf = DistanceBuffer::new();
        let ecc = bfs(&g, 0, &mut buf);
        assert_eq!(ecc, 5);
        for v in 0..6 {
            assert_eq!(buf.dist(v), v);
        }
    }

    #[test]
    fn bfs_marks_unreachable_as_infinity() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let mut buf = DistanceBuffer::new();
        let ecc = bfs(&g, 0, &mut buf);
        assert_eq!(ecc, 1);
        assert_eq!(buf.dist(2), INFINITY);
        assert_eq!(buf.dist(3), INFINITY);
    }

    #[test]
    fn bounded_bfs_truncates_at_limit() {
        let g = generators::path(10);
        let mut buf = DistanceBuffer::new();
        let reached = bfs_bounded(&g, 0, 3, &mut buf);
        assert_eq!(reached, 3);
        assert_eq!(buf.dist(3), 3);
        assert_eq!(buf.dist(4), INFINITY);
        assert_eq!(buf.visited().len(), 4);
    }

    #[test]
    fn bounded_bfs_visits_in_distance_order() {
        let g = generators::cycle(9);
        let mut buf = DistanceBuffer::new();
        bfs_bounded(&g, 0, 2, &mut buf);
        let ds: Vec<u32> = buf.visited().iter().map(|&v| buf.dist(v)).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(buf.visited()[0], 0);
    }

    #[test]
    fn skipping_bfs_deletes_the_node() {
        // path 0-1-2-3; skipping 1 disconnects 0 from {2,3}.
        let g = generators::path(4);
        let mut buf = DistanceBuffer::new();
        bfs_skipping(&g, 0, 1, &mut buf);
        assert_eq!(buf.dist(0), 0);
        assert_eq!(buf.dist(1), INFINITY);
        assert_eq!(buf.dist(2), INFINITY);
        // cycle 0-1-2-3-0; skipping 1 still reaches 2 the long way.
        let c = generators::cycle(4);
        bfs_skipping(&c, 0, 1, &mut buf);
        assert_eq!(buf.dist(2), 2);
        assert_eq!(buf.dist(3), 1);
        assert_eq!(buf.dist(1), INFINITY);
    }

    #[test]
    fn multi_source_bfs_takes_nearest_source() {
        let g = generators::path(7);
        let mut buf = DistanceBuffer::new();
        let maxd = bfs_multi(&g, &[0, 6], &mut buf);
        assert_eq!(maxd, 3);
        assert_eq!(buf.dist(3), 3);
        assert_eq!(buf.dist(5), 1);
    }

    #[test]
    fn multi_source_bfs_with_empty_sources() {
        let g = generators::path(3);
        let mut buf = DistanceBuffer::new();
        assert_eq!(bfs_multi(&g, &[], &mut buf), 0);
        assert!(buf.distances().iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn multi_source_handles_duplicate_sources() {
        let g = generators::path(4);
        let mut buf = DistanceBuffer::new();
        bfs_multi(&g, &[2, 2, 2], &mut buf);
        assert_eq!(buf.dist(0), 2);
        assert_eq!(buf.visited().len(), 4);
    }

    #[test]
    fn pairwise_distance_matches_full_bfs() {
        let g = generators::cycle(11);
        let mut buf = DistanceBuffer::new();
        for u in 0..11 {
            let mut full = DistanceBuffer::new();
            bfs(&g, u, &mut full);
            for v in 0..11 {
                assert_eq!(distance(&g, u, v, &mut buf), full.dist(v), "({u},{v})");
            }
        }
    }

    #[test]
    fn distance_unreachable_is_infinity() {
        let g = Graph::new(3);
        let mut buf = DistanceBuffer::new();
        assert_eq!(distance(&g, 0, 2, &mut buf), INFINITY);
        assert_eq!(distance(&g, 1, 1, &mut buf), 0);
    }

    #[test]
    fn buffer_is_reusable_across_graphs_of_different_size() {
        let mut buf = DistanceBuffer::new();
        bfs(&generators::path(10), 0, &mut buf);
        bfs(&generators::path(3), 0, &mut buf);
        assert_eq!(buf.distances().len(), 3);
    }
}
