//! Bit-parallel batched BFS: 64 sources per machine word.
//!
//! Every hot path of the workspace — view extraction, the per-vertex
//! sweep of `StateMetrics::measure`, LKE certification — runs one
//! bounded BFS *per player*. This module answers up to 64 of those
//! queries with **one** traversal: each node carries a `u64` lane mask
//! (bit `l` set ⇔ source `l` has reached the node), the frontier is
//! expanded level-synchronously with word-wide ORs, and batches larger
//! than 64 sources simply widen the per-node mask to ⌈lanes/64⌉ words.
//!
//! Because BFS distances in an unweighted graph are unique — `d(s, v)`
//! does not depend on traversal order — the per-lane results are
//! **bit-identical** to running the scalar kernel
//! (`crate::bfs`) once per source: same distances, same eccentricities,
//! same ball membership (and [`BatchDistances::lane_ball_into`] emits
//! ascending node ids, exactly the order `crate::view::ball_into`
//! produces after its sort). The direction-optimizing variant
//! ([`Direction::Auto`]) only changes *how* a level's new masks are
//! computed (scanning the frontier's out-edges vs. scanning unvisited
//! nodes' in-edges), never *which* masks result, so it shares the
//! guarantee. DESIGN.md §12 spells out the layout and the argument.
//!
//! Aggregates (eccentricity, reached count, status sum, ball sizes at
//! any radius) come from a per-lane **level histogram** — `counts[d][l]`
//! = nodes first reached by lane `l` at distance `d` — so the common
//! consumers never materialise `n × lanes` distance values. Callers
//! that do need full per-lane distance rows ask for them explicitly
//! via [`batch_bfs_full`] / [`BatchOptions::distances`].

use crate::bfs::Adjacency;
use crate::{NodeId, INFINITY};

/// Lanes per machine word: one `u64` of the mask vectors covers 64
/// sources; larger batches use ⌈lanes/64⌉ words per node.
pub const WORD_LANES: usize = 64;

/// How each BFS level is expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Always scan the frontier's out-edges (classic top-down).
    TopDown,
    /// Direction-optimizing: switch to bottom-up (scan not-yet-full
    /// nodes' in-edges) while the frontier is degree-heavy, back to
    /// top-down when it thins — keyed on frontier density, decided
    /// deterministically from graph + frontier state only. Results are
    /// identical to [`Direction::TopDown`]; only the work differs.
    #[default]
    Auto,
}

/// Options for [`batch_bfs_opts`]; the plain entry points cover the
/// common cases.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Distance bound (inclusive); nodes beyond it stay unreached.
    pub limit: u32,
    /// Optional deleted node: never enqueued, its incident edges are
    /// ignored — the `H ∖ {u}` semantics of `crate::bfs::bfs_skipping`,
    /// applied to every lane.
    pub skip: Option<NodeId>,
    /// Expansion strategy.
    pub direction: Direction,
    /// Materialise full per-lane distance rows
    /// ([`BatchDistances::lane_distances`]); off by default — the
    /// aggregate accessors work either way.
    pub distances: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { limit: u32::MAX, skip: None, direction: Direction::Auto, distances: false }
    }
}

/// Reusable workspace of the batched kernel: frontier/next masks and
/// node lists. Like `crate::bfs::DistanceBuffer`, create one per
/// thread (or long-lived computation) and pass it to every call; it
/// grows on demand and never shrinks.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Node-major lane masks of the current frontier (bits = lanes
    /// that reached the node at exactly the current level).
    frontier: Vec<u64>,
    /// Node-major lane masks being assembled for the next level.
    next: Vec<u64>,
    /// Nodes with a non-zero frontier mask.
    frontier_nodes: Vec<NodeId>,
    /// Nodes with a non-zero next mask (deduplicated via `in_next`).
    next_nodes: Vec<NodeId>,
    /// Membership flags for `next_nodes`.
    in_next: Vec<bool>,
}

impl BatchScratch {
    /// Fresh scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, words: usize) {
        self.frontier.clear();
        self.frontier.resize(n * words, 0);
        self.next.clear();
        self.next.resize(n * words, 0);
        self.frontier_nodes.clear();
        self.next_nodes.clear();
        self.in_next.clear();
        self.in_next.resize(n, false);
    }
}

/// Result of one batched run: per-node lane-membership masks, the
/// per-lane level histogram (and the aggregates derived from it), and
/// — only when requested — full per-lane distance rows.
///
/// Reusable like the scratch: pass the same instance to consecutive
/// calls and its allocations are recycled.
#[derive(Debug, Clone, Default)]
pub struct BatchDistances {
    lanes: usize,
    words: usize,
    nodes: usize,
    /// Node-major visited masks: bit `l` of `visited[v·words + l/64]`
    /// ⇔ lane `l` reached node `v` within the limit.
    visited: Vec<u64>,
    /// Level-major histogram, stride `lanes`: `counts[d·lanes + l]` =
    /// nodes first reached by lane `l` at distance `d`.
    counts: Vec<u32>,
    /// Per-lane largest finite distance (0 for an empty lane — the
    /// scalar kernel's return-value convention).
    ecc: Vec<u32>,
    /// Per-lane visited count (source included).
    reached: Vec<u32>,
    /// Per-lane status sum `Σ_v d(s, v)` over reached nodes.
    status: Vec<u64>,
    /// Union of all lanes' visited nodes, in first-visit order.
    order: Vec<NodeId>,
    /// Lane-major distance rows (`dist[l·n + v]`), when materialised.
    dist: Vec<u32>,
    has_dist: bool,
}

impl BatchDistances {
    /// An empty result buffer to thread through the batch entry points.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lanes (sources) of the most recent run.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Node count of the graph of the most recent run.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Largest finite distance lane `l` reached (0 when the lane
    /// visited nothing — same convention as the scalar kernel's return
    /// value).
    #[inline]
    pub fn ecc(&self, lane: usize) -> u32 {
        self.ecc[lane]
    }

    /// Number of nodes lane `l` reached, source included — equal to
    /// `DistanceBuffer::visited().len()` of the scalar run.
    #[inline]
    pub fn reached(&self, lane: usize) -> usize {
        self.reached[lane] as usize
    }

    /// Sum of finite distances of lane `l` (the status of its source
    /// when the lane reaches everyone).
    #[inline]
    pub fn status_sum(&self, lane: usize) -> u64 {
        self.status[lane]
    }

    /// Number of nodes lane `l` reached at distance `≤ radius` (the
    /// radius-`radius` ball size, for any `radius` up to the run's
    /// limit).
    pub fn ball_size(&self, lane: usize, radius: u32) -> usize {
        let levels = self.counts.len() / self.lanes.max(1);
        let top = (radius as usize).saturating_add(1).min(levels);
        (0..top).map(|d| self.counts[d * self.lanes + lane] as usize).sum()
    }

    /// Whether lane `l` reached node `v`.
    #[inline]
    pub fn lane_visited(&self, lane: usize, v: NodeId) -> bool {
        let word = self.visited[v as usize * self.words + lane / WORD_LANES];
        word >> (lane % WORD_LANES) & 1 != 0
    }

    /// Lane `l`'s visited set as ascending node ids — exactly the
    /// sorted ball `crate::view::ball_into` produces for the same
    /// source and limit.
    pub fn lane_ball_into(&self, lane: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let (w, bit) = (lane / WORD_LANES, lane % WORD_LANES);
        for v in 0..self.nodes {
            if self.visited[v * self.words + w] >> bit & 1 != 0 {
                out.push(v as NodeId);
            }
        }
    }

    /// Every node reached by *any* lane, in first-visit order — the
    /// union sweep the dirty-ball invalidation consumes. Level order
    /// is BFS order; *within* a level the order is
    /// traversal-dependent (frontier order top-down, ascending node
    /// scan bottom-up), so treat this as a set unless the direction
    /// is pinned.
    #[inline]
    pub fn union_visited(&self) -> &[NodeId] {
        &self.order
    }

    /// Full distance row of lane `l` (`INFINITY` = unreached), one
    /// `u32` per node.
    ///
    /// # Panics
    /// Panics unless the run materialised distances
    /// ([`batch_bfs_full`] or [`BatchOptions::distances`]).
    pub fn lane_distances(&self, lane: usize) -> &[u32] {
        assert!(self.has_dist, "run did not materialise distance rows");
        &self.dist[lane * self.nodes..(lane + 1) * self.nodes]
    }

    fn reset(&mut self, n: usize, lanes: usize, words: usize, with_dist: bool) {
        self.lanes = lanes;
        self.words = words;
        self.nodes = n;
        self.visited.clear();
        self.visited.resize(n * words, 0);
        self.counts.clear();
        self.ecc.clear();
        self.ecc.resize(lanes, 0);
        self.reached.clear();
        self.reached.resize(lanes, 0);
        self.status.clear();
        self.status.resize(lanes, 0);
        self.order.clear();
        self.dist.clear();
        self.has_dist = with_dist;
        if with_dist {
            self.dist.resize(lanes * n, INFINITY);
        }
    }

    /// Folds the level histogram into the per-lane aggregates.
    fn finish(&mut self) {
        let lanes = self.lanes;
        if lanes == 0 {
            return;
        }
        for (d, level) in self.counts.chunks_exact(lanes).enumerate() {
            for (lane, &c) in level.iter().enumerate() {
                if c > 0 {
                    self.ecc[lane] = d as u32;
                    self.reached[lane] += c;
                    self.status[lane] += d as u64 * c as u64;
                }
            }
        }
    }
}

/// Batched BFS with default options: every source is its own lane,
/// truncated at `limit` (inclusive), direction-optimizing, aggregates
/// only. Per-lane results are bit-identical to one scalar
/// `crate::bfs::bfs_bounded` call per source.
pub fn batch_bfs<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    limit: u32,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
) {
    batch_bfs_opts(g, sources, &BatchOptions { limit, ..BatchOptions::default() }, scratch, out);
}

/// [`batch_bfs`] with full per-lane distance rows materialised
/// ([`BatchDistances::lane_distances`]).
pub fn batch_bfs_full<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    limit: u32,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
) {
    let opts = BatchOptions { limit, distances: true, ..BatchOptions::default() };
    batch_bfs_opts(g, sources, &opts, scratch, out);
}

/// The fully-parameterised batched kernel: one level-synchronous
/// traversal answering `sources.len()` independent single-source
/// bounded BFS queries (duplicates allowed — lanes are independent).
pub fn batch_bfs_opts<A: Adjacency + ?Sized>(
    g: &A,
    sources: &[NodeId],
    opts: &BatchOptions,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
) {
    let n = g.node_count();
    let lanes = sources.len();
    let words = lanes.div_ceil(WORD_LANES).max(1);
    out.reset(n, lanes, words, opts.distances);
    scratch.reset(n, words);
    let skip = opts.skip.unwrap_or(NodeId::MAX);

    // Level 0: seed each lane at its source (skipped lanes stay empty,
    // like the scalar kernel dropping a skipped source).
    out.counts.resize(lanes, 0);
    let mut seeded = false;
    for (lane, &s) in sources.iter().enumerate() {
        debug_assert!((s as usize) < n, "batch BFS source out of range");
        if s == skip {
            continue;
        }
        seeded = true;
        let base = s as usize * words;
        let first_visit = out.visited[base..base + words].iter().all(|&m| m == 0);
        out.visited[base + lane / WORD_LANES] |= 1 << (lane % WORD_LANES);
        scratch.frontier[base + lane / WORD_LANES] |= 1 << (lane % WORD_LANES);
        out.counts[lane] = 1;
        if opts.distances {
            out.dist[lane * n + s as usize] = 0;
        }
        if first_visit {
            out.order.push(s);
            scratch.frontier_nodes.push(s);
        }
    }
    if !seeded {
        out.finish();
        return;
    }

    // Total degree, for the direction heuristic's density denominator
    // (only worth computing when the heuristic can fire).
    let total_deg: usize = match opts.direction {
        Direction::Auto => (0..n as NodeId).map(|u| g.adjacent(u).len()).sum(),
        Direction::TopDown => 0,
    };
    let mut frontier_deg: usize = scratch.frontier_nodes.iter().map(|&u| g.adjacent(u).len()).sum();

    let mut depth = 0u32;
    while !scratch.frontier_nodes.is_empty() && depth < opts.limit {
        // Beamer-style switch: bottom-up pays off while the frontier
        // carries a large share of the edges and is not yet sparse.
        let bottom_up = opts.direction == Direction::Auto
            && frontier_deg * 8 > total_deg
            && scratch.frontier_nodes.len() * 24 > n;
        if bottom_up {
            expand_bottom_up(g, skip, words, scratch, out);
        } else {
            expand_top_down(g, skip, words, scratch, out);
        }
        if scratch.next_nodes.is_empty() {
            break;
        }
        depth += 1;
        commit_level(g, depth, words, scratch, out, &mut frontier_deg);
    }
    out.finish();
}

/// Top-down expansion: scan the frontier's out-edges, OR each frontier
/// mask into the neighbour's `next` word (masked against `visited`).
fn expand_top_down<A: Adjacency + ?Sized>(
    g: &A,
    skip: NodeId,
    words: usize,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
) {
    for &u in &scratch.frontier_nodes {
        let fbase = u as usize * words;
        for &v in g.adjacent(u) {
            if v == skip {
                continue;
            }
            let vbase = v as usize * words;
            let mut added = false;
            for w in 0..words {
                let add = scratch.frontier[fbase + w] & !out.visited[vbase + w];
                if add != 0 {
                    scratch.next[vbase + w] |= add;
                    added = true;
                }
            }
            if added && !scratch.in_next[v as usize] {
                scratch.in_next[v as usize] = true;
                scratch.next_nodes.push(v);
            }
        }
    }
}

/// Bottom-up expansion: for every node still missing lanes, OR in the
/// frontier masks of its neighbours. Same `next` masks as top-down —
/// the switch never changes results, only the scan order of the same
/// level-synchronous step.
fn expand_bottom_up<A: Adjacency + ?Sized>(
    g: &A,
    skip: NodeId,
    words: usize,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
) {
    let full = full_masks(out.lanes, words);
    for v in 0..out.nodes as NodeId {
        if v == skip {
            continue;
        }
        let vbase = v as usize * words;
        if (0..words).all(|w| out.visited[vbase + w] == full(w)) {
            continue;
        }
        let mut added = false;
        for &u in g.adjacent(v) {
            let ubase = u as usize * words;
            for w in 0..words {
                let add = scratch.frontier[ubase + w] & !out.visited[vbase + w];
                if add != 0 {
                    scratch.next[vbase + w] |= add;
                    added = true;
                }
            }
        }
        if added {
            scratch.in_next[v as usize] = true;
            scratch.next_nodes.push(v);
        }
    }
}

/// The all-lanes-present mask per word (the last word may be partial).
fn full_masks(lanes: usize, words: usize) -> impl Fn(usize) -> u64 {
    move |w: usize| {
        let rem = lanes - w * WORD_LANES;
        if w + 1 < words || rem == WORD_LANES {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }
}

/// Commits a level: folds `next` masks into `visited`, updates the
/// histogram (and distance rows), clears the old frontier, and swaps
/// `next` in as the new frontier.
fn commit_level<A: Adjacency + ?Sized>(
    g: &A,
    depth: u32,
    words: usize,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
    frontier_deg: &mut usize,
) {
    let lanes = out.lanes;
    let level_off = out.counts.len();
    out.counts.resize(level_off + lanes, 0);
    *frontier_deg = 0;
    for &v in &scratch.next_nodes {
        scratch.in_next[v as usize] = false;
        let vbase = v as usize * words;
        let first_visit = out.visited[vbase..vbase + words].iter().all(|&m| m == 0);
        for w in 0..words {
            let mut m = scratch.next[vbase + w];
            if m == 0 {
                continue;
            }
            debug_assert_eq!(m & out.visited[vbase + w], 0, "next must carry only new lanes");
            out.visited[vbase + w] |= m;
            while m != 0 {
                let lane = w * WORD_LANES + m.trailing_zeros() as usize;
                out.counts[level_off + lane] += 1;
                if out.has_dist {
                    out.dist[lane * out.nodes + v as usize] = depth;
                }
                m &= m - 1;
            }
        }
        if first_visit {
            out.order.push(v);
        }
        *frontier_deg += g.adjacent(v).len();
    }
    for &u in &scratch.frontier_nodes {
        let ubase = u as usize * words;
        scratch.frontier[ubase..ubase + words].fill(0);
    }
    scratch.frontier_nodes.clear();
    std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    std::mem::swap(&mut scratch.frontier_nodes, &mut scratch.next_nodes);
}

/// Whether the batched kernels are enabled for this process: the
/// `NCG_BATCH_BFS` escape hatch (`0`/`false`/`off` disables; default
/// on). Read once — per-process A/B is how CI byte-diffs the two
/// paths; in-process tests toggle the explicit policy parameters of
/// the adopters instead of racing the environment.
pub fn batch_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| batch_enabled_setting(std::env::var("NCG_BATCH_BFS").ok().as_deref()))
}

/// Pure parser behind [`batch_enabled`], testable without touching the
/// process environment.
pub fn batch_enabled_setting(raw: Option<&str>) -> bool {
    !matches!(raw.map(str::trim), Some("0") | Some("false") | Some("off"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs_bounded, DistanceBuffer};
    use crate::{generators, CsrGraph, Graph};

    fn assert_parity(g: &Graph, sources: &[NodeId], limit: u32) {
        let csr = CsrGraph::from_graph(g);
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        batch_bfs_full(&csr, sources, limit, &mut scratch, &mut out);
        let mut buf = DistanceBuffer::new();
        for (lane, &s) in sources.iter().enumerate() {
            let ecc = bfs_bounded(g, s, limit, &mut buf);
            assert_eq!(out.ecc(lane), ecc, "ecc lane {lane}");
            assert_eq!(out.reached(lane), buf.visited().len(), "reached lane {lane}");
            assert_eq!(out.lane_distances(lane), buf.distances(), "distances lane {lane}");
            let status: u64 =
                buf.distances().iter().filter(|&&d| d != INFINITY).map(|&d| d as u64).sum();
            assert_eq!(out.status_sum(lane), status, "status lane {lane}");
        }
    }

    #[test]
    fn single_lane_matches_scalar_on_path() {
        assert_parity(&generators::path(10), &[0], u32::MAX);
        assert_parity(&generators::path(10), &[5], 2);
    }

    #[test]
    fn sixty_five_lanes_span_two_words() {
        let g = generators::cycle(70);
        let sources: Vec<NodeId> = (0..65).collect();
        assert_parity(&g, &sources, u32::MAX);
        assert_parity(&g, &sources, 3);
    }

    #[test]
    fn duplicate_sources_get_independent_lanes() {
        let g = generators::path(8);
        assert_parity(&g, &[3, 3, 0, 3], u32::MAX);
    }

    #[test]
    fn skip_empties_the_skipped_lane_and_cuts_paths() {
        // path 0-1-2-3, skip 1: lane from 0 sees only {0}.
        let g = generators::path(4);
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        let opts = BatchOptions { skip: Some(1), ..BatchOptions::default() };
        batch_bfs_opts(&g, &[0, 1, 2], &opts, &mut scratch, &mut out);
        assert_eq!(out.reached(0), 1);
        assert_eq!(out.reached(1), 0, "skipped source lane is empty");
        assert_eq!(out.ecc(1), 0);
        assert_eq!(out.reached(2), 2, "lane from 2 reaches {{2, 3}}");
        assert!(out.lane_visited(2, 3));
        assert!(!out.lane_visited(0, 1));
    }

    #[test]
    fn ball_iteration_is_ascending_and_sized() {
        let g = generators::cycle(12);
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        batch_bfs(&g, &[0, 6], 2, &mut scratch, &mut out);
        let mut ball = Vec::new();
        out.lane_ball_into(0, &mut ball);
        assert_eq!(ball, crate::view::ball(&g, 0, 2));
        assert_eq!(out.ball_size(0, 2), 5);
        assert_eq!(out.ball_size(0, 1), 3);
        assert_eq!(out.ball_size(0, 0), 1);
        assert_eq!(out.ball_size(1, u32::MAX), 5, "radius beyond limit clamps");
    }

    #[test]
    fn directions_agree_on_gnp() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = generators::gnp(120, 0.05, &mut rng).unwrap();
        let sources: Vec<NodeId> = (0..120).collect();
        let mut scratch = BatchScratch::new();
        let (mut td, mut auto) = (BatchDistances::new(), BatchDistances::new());
        for limit in [1, 3, u32::MAX] {
            let t =
                BatchOptions { limit, direction: Direction::TopDown, distances: true, skip: None };
            let a = BatchOptions { direction: Direction::Auto, ..t };
            batch_bfs_opts(&g, &sources, &t, &mut scratch, &mut td);
            batch_bfs_opts(&g, &sources, &a, &mut scratch, &mut auto);
            for lane in 0..sources.len() {
                assert_eq!(td.lane_distances(lane), auto.lane_distances(lane), "limit {limit}");
            }
        }
    }

    #[test]
    fn empty_sources_and_empty_graph() {
        let g = generators::path(3);
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        batch_bfs(&g, &[], u32::MAX, &mut scratch, &mut out);
        assert_eq!(out.lanes(), 0);
        assert!(out.union_visited().is_empty());
        let empty = Graph::new(0);
        batch_bfs(&empty, &[], 5, &mut scratch, &mut out);
        assert_eq!(out.node_count(), 0);
    }

    #[test]
    fn union_visited_covers_exactly_the_reached_nodes() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (4, 5)]).unwrap();
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        batch_bfs(&g, &[0, 4], u32::MAX, &mut scratch, &mut out);
        let mut union: Vec<NodeId> = out.union_visited().to_vec();
        union.sort_unstable();
        assert_eq!(union, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn env_setting_parser() {
        assert!(batch_enabled_setting(None));
        assert!(batch_enabled_setting(Some("1")));
        assert!(batch_enabled_setting(Some("yes")));
        assert!(!batch_enabled_setting(Some("0")));
        assert!(!batch_enabled_setting(Some(" 0 ")));
        assert!(!batch_enabled_setting(Some("false")));
        assert!(!batch_enabled_setting(Some("off")));
    }
}
