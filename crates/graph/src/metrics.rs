//! Graph metrics: eccentricity, diameter, radius, girth, connectivity.
//!
//! All-pairs variants are rayon-parallel over BFS sources with
//! per-thread [`DistanceBuffer`]s; the result order is deterministic
//! (indexed collect), independent of scheduling.

use rayon::prelude::*;

use crate::bfs::{bfs, DistanceBuffer};
use crate::{Graph, NodeId, INFINITY};

/// Eccentricity of `u`: the largest distance from `u` to any node.
///
/// Returns `None` if `u` does not reach every node (disconnected
/// graph), mirroring the game semantics where a disconnected player
/// has unbounded usage cost.
pub fn eccentricity(g: &Graph, u: NodeId) -> Option<u32> {
    let mut buf = DistanceBuffer::with_capacity(g.node_count());
    let ecc = bfs(g, u, &mut buf);
    if buf.visited().len() == g.node_count() {
        Some(ecc)
    } else {
        None
    }
}

/// All eccentricities, computed in parallel. `INFINITY` marks nodes
/// that do not reach the whole graph.
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    (0..g.node_count() as NodeId)
        .into_par_iter()
        .map_init(
            || DistanceBuffer::with_capacity(g.node_count()),
            |buf, u| {
                let ecc = bfs(g, u, buf);
                if buf.visited().len() == g.node_count() {
                    ecc
                } else {
                    INFINITY
                }
            },
        )
        .collect()
}

/// Diameter (largest eccentricity); `None` if disconnected or empty.
pub fn diameter(g: &Graph) -> Option<u32> {
    let eccs = eccentricities(g);
    let max = eccs.iter().copied().max()?;
    if max == INFINITY {
        None
    } else {
        Some(max)
    }
}

/// Radius (smallest eccentricity); `None` if disconnected or empty.
pub fn radius(g: &Graph) -> Option<u32> {
    let eccs = eccentricities(g);
    let min = eccs.iter().copied().min()?;
    if min == INFINITY {
        None
    } else {
        Some(min)
    }
}

/// Whether the graph is connected. The empty graph counts as
/// connected; a single node does too.
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    let mut buf = DistanceBuffer::with_capacity(g.node_count());
    bfs(g, 0, &mut buf);
    buf.visited().len() == g.node_count()
}

/// Sum of distances from `u` to all nodes (the *status* of `u`, the
/// SumNCG usage cost). `None` if `u` does not reach every node.
pub fn status(g: &Graph, u: NodeId) -> Option<u64> {
    let mut buf = DistanceBuffer::with_capacity(g.node_count());
    bfs(g, u, &mut buf);
    if buf.visited().len() != g.node_count() {
        return None;
    }
    Some(buf.distances().iter().map(|&d| d as u64).sum())
}

/// All statuses at once, rayon-parallel over sources (the SumNCG
/// social-cost kernel). `None` entries mark nodes that do not reach
/// the whole graph.
pub fn statuses(g: &Graph) -> Vec<Option<u64>> {
    (0..g.node_count() as NodeId)
        .into_par_iter()
        .map_init(
            || DistanceBuffer::with_capacity(g.node_count()),
            |buf, u| {
                bfs(g, u, buf);
                if buf.visited().len() != g.node_count() {
                    None
                } else {
                    Some(buf.distances().iter().map(|&d| d as u64).sum())
                }
            },
        )
        .collect()
}

/// All-pairs shortest-path distance matrix, row `u` = distances from
/// `u`. Parallel over sources; `INFINITY` marks unreachable pairs.
///
/// Memory is `n²·4` bytes — fine for the paper's `n ≤ a few thousand`.
pub fn distance_matrix(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.node_count() as NodeId)
        .into_par_iter()
        .map_init(
            || DistanceBuffer::with_capacity(g.node_count()),
            |buf, u| {
                bfs(g, u, buf);
                buf.distances().to_vec()
            },
        )
        .collect()
}

/// Girth: length of the shortest cycle, `None` if the graph is acyclic
/// (a forest).
///
/// Standard BFS-per-vertex algorithm, `O(n·m)`: for each source run a
/// BFS that records parents; a non-tree edge `(u, v)` discovered with
/// `dist(u) + dist(v) + 1` closes a cycle through the source of that
/// length or shorter. The minimum over all sources is exact.
pub fn girth(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    let mut best: u32 = INFINITY;
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![INFINITY; n];
    let mut queue: Vec<NodeId> = Vec::with_capacity(n);
    for s in 0..n as NodeId {
        dist.iter_mut().for_each(|d| *d = INFINITY);
        parent.iter_mut().for_each(|p| *p = INFINITY);
        queue.clear();
        dist[s as usize] = 0;
        queue.push(s);
        let mut head = 0;
        'bfs: while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            // Any cycle through s discovered at depth du has length
            // ≥ 2·du; prune once it cannot beat the best.
            if 2 * du >= best {
                break 'bfs;
            }
            for &v in g.neighbors(u) {
                if dist[v as usize] == INFINITY {
                    dist[v as usize] = du + 1;
                    parent[v as usize] = u;
                    queue.push(v);
                } else if parent[u as usize] != v {
                    // Non-tree edge: cycle of length dist(u)+dist(v)+1.
                    let len = du + dist[v as usize] + 1;
                    if len < best {
                        best = len;
                    }
                }
            }
        }
    }
    if best == INFINITY {
        None
    } else {
        Some(best)
    }
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut buf = DistanceBuffer::with_capacity(n);
    let mut count = 0;
    for s in 0..n as NodeId {
        if !seen[s as usize] {
            count += 1;
            bfs(g, s, &mut buf);
            for &v in buf.visited() {
                seen[v as usize] = true;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_metrics() {
        let g = generators::path(7);
        assert_eq!(diameter(&g), Some(6));
        assert_eq!(radius(&g), Some(3));
        assert_eq!(eccentricity(&g, 0), Some(6));
        assert_eq!(eccentricity(&g, 3), Some(3));
        assert_eq!(girth(&g), None);
        assert!(is_connected(&g));
    }

    #[test]
    fn cycle_metrics() {
        let g = generators::cycle(10);
        assert_eq!(diameter(&g), Some(5));
        assert_eq!(radius(&g), Some(5));
        assert_eq!(girth(&g), Some(10));
    }

    #[test]
    fn odd_cycle_girth() {
        let g = generators::cycle(7);
        assert_eq!(girth(&g), Some(7));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn star_metrics() {
        let g = generators::star(6);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(radius(&g), Some(1));
        assert_eq!(girth(&g), None);
        assert_eq!(status(&g, 0), Some(5));
        assert_eq!(status(&g, 1), Some(1 + 2 * 4));
    }

    #[test]
    fn clique_metrics() {
        let g = generators::complete(5);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(status(&g, 0), None);
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn girth_finds_triangle_in_larger_graph() {
        // A 6-cycle with one chord creating a triangle 0-1-5? No:
        // chord (0,2) creates triangle 0-1-2.
        let mut g = generators::cycle(6);
        g.add_edge(0, 2);
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn girth_even_cycle_via_two_squares_sharing_edge() {
        // Two 4-cycles sharing an edge: girth 4.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 2)]).unwrap();
        assert_eq!(girth(&g), Some(4));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (u, v) indices express the symmetry check
    fn distance_matrix_is_symmetric_and_matches_bfs() {
        let g = generators::grid(3, 4);
        let m = distance_matrix(&g);
        let n = g.node_count();
        for u in 0..n {
            assert_eq!(m[u][u], 0);
            for v in 0..n {
                assert_eq!(m[u][v], m[v][u]);
            }
        }
        assert_eq!(m[0][n - 1], 2 + 3); // manhattan corner-to-corner
    }

    #[test]
    fn statuses_agree_with_pointwise() {
        let g = generators::grid(3, 4);
        let all = statuses(&g);
        for u in 0..g.node_count() as NodeId {
            assert_eq!(all[u as usize], status(&g, u));
        }
        let disc = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(statuses(&disc), vec![None, None, None]);
    }

    #[test]
    fn eccentricities_agree_with_pointwise() {
        let g = generators::grid(3, 3);
        let eccs = eccentricities(&g);
        for u in 0..g.node_count() as NodeId {
            assert_eq!(Some(eccs[u as usize]), eccentricity(&g, u));
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let e = Graph::new(0);
        assert_eq!(diameter(&e), None);
        assert!(is_connected(&e));
        let s = Graph::new(1);
        assert_eq!(diameter(&s), Some(0));
        assert_eq!(radius(&s), Some(0));
        assert!(is_connected(&s));
        assert_eq!(component_count(&s), 1);
    }
}
