//! Property-based parity tests for the bit-parallel batched BFS
//! engine against the scalar kernel it replaces.
//!
//! Strategy: random graphs and random source lists (sizes 1..=130, so
//! single-word, multi-word, and partial-last-word lane layouts are all
//! exercised, with duplicate sources common), random limits, optional
//! skip node, and both traversal directions. Every lane must then be
//! bit-identical to an independent scalar run of the same source —
//! full distance rows, the derived aggregates (eccentricity, reach
//! count, status sum, ball sizes), the sorted per-lane balls, and the
//! visited union.

use ncg_graph::batch::{batch_bfs_opts, BatchDistances, BatchOptions, BatchScratch, Direction};
use ncg_graph::bfs::{bfs, bfs_skipping, DistanceBuffer};
use ncg_graph::{Graph, NodeId, INFINITY};
use proptest::prelude::*;

/// An arbitrary graph on up to `max_n` nodes via a random edge list.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges.min(60)).prop_map(
            move |pairs| {
                let mut g = Graph::new(n);
                for (u, v) in pairs {
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
                g
            },
        )
    })
}

/// A graph plus a source list with duplicates, spanning 1..=130 lanes.
fn arb_instance(max_n: usize) -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    arb_graph(max_n).prop_flat_map(|g| {
        let n = g.node_count() as NodeId;
        let sources = proptest::collection::vec(0..n, 1..=130);
        (Just(g), sources)
    })
}

/// The scalar reference for one lane: the distance row a skip-aware,
/// limit-truncated single-source BFS produces (`INFINITY` everywhere
/// when the source itself is skipped — the batched seed convention).
fn scalar_row(
    g: &Graph,
    source: NodeId,
    limit: u32,
    skip: Option<NodeId>,
    buf: &mut DistanceBuffer,
) -> Vec<u32> {
    let n = g.node_count();
    let mut row = vec![INFINITY; n];
    if skip == Some(source) {
        return row;
    }
    match skip {
        Some(s) => bfs_skipping(g, source, s, buf),
        None => bfs(g, source, buf),
    };
    for (v, d) in row.iter_mut().enumerate() {
        let full = buf.dist(v as NodeId);
        if full != INFINITY && full <= limit {
            *d = full;
        }
    }
    row
}

proptest! {
    // Capped so a full `cargo test -q` stays fast and deterministic;
    // override with PROPTEST_CASES (and PROPTEST_SEED) for deeper runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_lanes_match_scalar_bfs(
        (g, sources) in arb_instance(24),
        limit_ix in 0usize..5,
        skip_sel in 0usize..3,
        top_down in any::<bool>(),
    ) {
        let n = g.node_count();
        let limit = [0u32, 1, 2, 3, u32::MAX][limit_ix];
        // No skip, skip a node that is often a source, skip the last
        // node (often not a source).
        let skip = match skip_sel {
            0 => None,
            1 => Some(0),
            _ => Some(n as NodeId - 1),
        };
        let opts = BatchOptions {
            limit,
            skip,
            direction: if top_down { Direction::TopDown } else { Direction::Auto },
            distances: true,
        };
        let mut scratch = BatchScratch::new();
        let mut out = BatchDistances::new();
        batch_bfs_opts(&g, &sources, &opts, &mut scratch, &mut out);
        prop_assert_eq!(out.lanes(), sources.len());
        prop_assert_eq!(out.node_count(), n);

        let mut buf = DistanceBuffer::new();
        let mut ball = Vec::new();
        let mut expect_union = vec![false; n];
        for (lane, &s) in sources.iter().enumerate() {
            let expect = scalar_row(&g, s, limit, skip, &mut buf);
            prop_assert_eq!(out.lane_distances(lane), &expect[..], "lane {} src {}", lane, s);

            // Aggregates derived from the level histogram must agree
            // with the same quantities recomputed from the row.
            let finite: Vec<u32> =
                expect.iter().copied().filter(|&d| d != INFINITY).collect();
            prop_assert_eq!(out.reached(lane), finite.len());
            prop_assert_eq!(out.ecc(lane), finite.iter().max().copied().unwrap_or(0));
            prop_assert_eq!(
                out.status_sum(lane),
                finite.iter().map(|&d| d as u64).sum::<u64>()
            );
            for radius in [0u32, 1, 2, 5, u32::MAX] {
                prop_assert_eq!(
                    out.ball_size(lane, radius),
                    expect.iter().filter(|&&d| d != INFINITY && d <= radius).count(),
                    "lane {} radius {}", lane, radius
                );
            }

            // Per-lane membership and the sorted ball view.
            out.lane_ball_into(lane, &mut ball);
            let expect_ball: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| expect[v as usize] != INFINITY)
                .collect();
            for &v in &expect_ball {
                prop_assert!(out.lane_visited(lane, v));
                expect_union[v as usize] = true;
            }
            prop_assert_eq!(&ball, &expect_ball, "lane {} ball", lane);
        }

        // The first-visit union covers exactly the lanes' visited sets.
        let mut union: Vec<NodeId> = out.union_visited().to_vec();
        union.sort_unstable();
        let expected: Vec<NodeId> =
            (0..n as NodeId).filter(|&v| expect_union[v as usize]).collect();
        prop_assert_eq!(union, expected);
    }

    #[test]
    fn directions_agree_bitwise(
        (g, sources) in arb_instance(20),
        limit_ix in 0usize..3,
    ) {
        // The direction heuristic may change the traversal order but
        // never the result: TopDown and Auto must emit identical
        // distance rows and identical first-visit unions.
        let limit = [1u32, 3, u32::MAX][limit_ix];
        let mut scratch = BatchScratch::new();
        let mut td = BatchDistances::new();
        let mut auto = BatchDistances::new();
        for (out, direction) in
            [(&mut td, Direction::TopDown), (&mut auto, Direction::Auto)]
        {
            let opts = BatchOptions { limit, skip: None, direction, distances: true };
            batch_bfs_opts(&g, &sources, &opts, &mut scratch, out);
        }
        for lane in 0..sources.len() {
            prop_assert_eq!(td.lane_distances(lane), auto.lane_distances(lane));
        }
        // The union is first-visit ordered, and *within* a level the
        // visit order is traversal-dependent (frontier order top-down,
        // ascending scan bottom-up) — only the set is invariant.
        let mut a: Vec<NodeId> = td.union_visited().to_vec();
        let mut b: Vec<NodeId> = auto.union_visited().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
