//! Property-based tests for the graph substrate.
//!
//! Strategy: generate random edge lists / random graphs and check the
//! structural invariants that the rest of the workspace relies on:
//! BFS against a reference Floyd–Warshall, ball/view consistency,
//! power-graph semantics, and mutation round-trips.

use ncg_graph::bfs::{bfs, bfs_bounded, bfs_multi, bfs_skipping, DistanceBuffer};
use ncg_graph::{generators, metrics, view, Graph, NodeId, INFINITY};
use proptest::prelude::*;

/// Reference all-pairs shortest paths: Floyd–Warshall on a dense
/// matrix. O(n³) — fine for the sizes proptest generates.
#[allow(clippy::needless_range_loop)] // index triples mirror the textbook recurrence
fn floyd_warshall(g: &Graph) -> Vec<Vec<u64>> {
    let n = g.node_count();
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for u in 0..n {
        d[u][u] = 0;
    }
    for (u, v) in g.edges() {
        d[u as usize][v as usize] = 1;
        d[v as usize][u as usize] = 1;
    }
    for m in 0..n {
        for u in 0..n {
            for v in 0..n {
                let via = d[u][m] + d[m][v];
                if via < d[u][v] {
                    d[u][v] = via;
                }
            }
        }
    }
    d
}

/// An arbitrary graph on up to `max_n` nodes via a random edge list.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..=max_edges.min(60)).prop_map(
            move |pairs| {
                let mut g = Graph::new(n);
                for (u, v) in pairs {
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
                g
            },
        )
    })
}

proptest! {
    // Capped so a full `cargo test -q` stays fast and deterministic;
    // override with PROPTEST_CASES (and PROPTEST_SEED) for deeper runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[allow(clippy::needless_range_loop)] // (u, v) indices are compared across two matrices
    fn bfs_matches_floyd_warshall(g in arb_graph(24)) {
        let reference = floyd_warshall(&g);
        let mut buf = DistanceBuffer::new();
        for u in 0..g.node_count() as NodeId {
            bfs(&g, u, &mut buf);
            for v in 0..g.node_count() {
                let expect = reference[u as usize][v];
                let got = buf.dist(v as NodeId);
                if expect >= u64::MAX / 4 {
                    prop_assert_eq!(got, INFINITY);
                } else {
                    prop_assert_eq!(got as u64, expect);
                }
            }
        }
    }

    #[test]
    fn bounded_bfs_is_truncated_full_bfs(g in arb_graph(20), k in 0u32..6) {
        let mut full = DistanceBuffer::new();
        let mut bounded = DistanceBuffer::new();
        for u in 0..g.node_count() as NodeId {
            bfs(&g, u, &mut full);
            bfs_bounded(&g, u, k, &mut bounded);
            for v in 0..g.node_count() as NodeId {
                let f = full.dist(v);
                let b = bounded.dist(v);
                if f <= k {
                    prop_assert_eq!(b, f);
                } else {
                    prop_assert_eq!(b, INFINITY);
                }
            }
        }
    }

    #[test]
    fn skipping_bfs_equals_bfs_on_deleted_graph(g in arb_graph(16)) {
        let n = g.node_count();
        if n < 3 { return Ok(()); }
        let skip: NodeId = (n as NodeId) - 1;
        let source: NodeId = 0;
        let mut deleted = g.clone();
        deleted.detach_node(skip);
        let mut a = DistanceBuffer::new();
        let mut b = DistanceBuffer::new();
        bfs_skipping(&g, source, skip, &mut a);
        bfs(&deleted, source, &mut b);
        for v in 0..n as NodeId {
            if v == skip {
                prop_assert_eq!(a.dist(v), INFINITY);
            } else {
                prop_assert_eq!(a.dist(v), b.dist(v));
            }
        }
    }

    #[test]
    fn multi_source_is_min_over_sources(g in arb_graph(14)) {
        let n = g.node_count() as NodeId;
        let sources: Vec<NodeId> = (0..n).filter(|v| v % 3 == 0).collect();
        let mut multi = DistanceBuffer::new();
        bfs_multi(&g, &sources, &mut multi);
        let mut single = DistanceBuffer::new();
        for v in 0..n {
            let best = sources
                .iter()
                .map(|&s| {
                    bfs(&g, s, &mut single);
                    single.dist(v)
                })
                .min()
                .unwrap_or(INFINITY);
            prop_assert_eq!(multi.dist(v), best);
        }
    }

    #[test]
    fn ball_is_distance_filtered_vertex_set(g in arb_graph(18), k in 0u32..5) {
        let mut buf = DistanceBuffer::new();
        for u in 0..g.node_count() as NodeId {
            bfs(&g, u, &mut buf);
            let expected: Vec<NodeId> = (0..g.node_count() as NodeId)
                .filter(|&v| buf.dist(v) <= k)
                .collect();
            prop_assert_eq!(view::ball(&g, u, k), expected);
        }
    }

    #[test]
    fn induced_subgraph_preserves_internal_adjacency(g in arb_graph(16)) {
        let nodes: Vec<NodeId> =
            (0..g.node_count() as NodeId).filter(|v| v % 2 == 0).collect();
        let sub = view::induced_subgraph(&g, &nodes);
        prop_assert!(sub.graph.validate().is_ok());
        for (i, &gu) in sub.local_to_global.iter().enumerate() {
            for (j, &gv) in sub.local_to_global.iter().enumerate() {
                prop_assert_eq!(
                    sub.graph.has_edge(i as NodeId, j as NodeId),
                    g.has_edge(gu, gv)
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (u, v) indices are compared across two matrices
    fn power_edge_iff_distance_at_most_h(g in arb_graph(14), h in 0u32..5) {
        let p = view::power(&g, h);
        let reference = floyd_warshall(&g);
        for u in 0..g.node_count() {
            for v in (u + 1)..g.node_count() {
                let d = reference[u][v];
                let expect = d >= 1 && d <= h as u64;
                prop_assert_eq!(p.has_edge(u as NodeId, v as NodeId), expect,
                    "u={}, v={}, d={}, h={}", u, v, d, h);
            }
        }
    }

    #[test]
    fn add_remove_round_trip(g in arb_graph(20)) {
        let mut h = g.clone();
        let edges: Vec<_> = g.edges().collect();
        for &(u, v) in &edges {
            prop_assert!(h.remove_edge(u, v));
        }
        prop_assert_eq!(h.edge_count(), 0);
        for &(u, v) in &edges {
            prop_assert!(h.add_edge(u, v));
        }
        prop_assert_eq!(&h, &g);
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn serde_round_trip(g in arb_graph(16)) {
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn eccentricity_bounds_on_connected_graphs(n in 3usize..40) {
        // Deterministic family: cycles. diameter = floor(n/2), radius same.
        let g = generators::cycle(n);
        let d = metrics::diameter(&g).unwrap();
        let r = metrics::radius(&g).unwrap();
        prop_assert_eq!(d as usize, n / 2);
        prop_assert_eq!(r, d);
        prop_assert!(r <= d && d <= 2 * r);
    }

    #[test]
    fn girth_of_random_graph_matches_bruteforce(g in arb_graph(10)) {
        // Brute force: shortest cycle via BFS from every edge removal.
        let mut best: Option<u32> = None;
        let mut buf = DistanceBuffer::new();
        let edges: Vec<_> = g.edges().collect();
        let mut h = g.clone();
        for &(u, v) in &edges {
            h.remove_edge(u, v);
            let d = ncg_graph::bfs::distance(&h, u, v, &mut buf);
            h.add_edge(u, v);
            if d != INFINITY {
                let cycle = d + 1;
                best = Some(best.map_or(cycle, |b: u32| b.min(cycle)));
            }
        }
        prop_assert_eq!(metrics::girth(&g), best);
    }

    #[test]
    fn random_tree_invariants(n in 1usize..80, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        prop_assert_eq!(t.node_count(), n);
        prop_assert_eq!(t.edge_count(), n.saturating_sub(1));
        prop_assert!(metrics::is_connected(&t));
    }
}
