//! Bench-only crate: see `benches/` for the Criterion targets.
