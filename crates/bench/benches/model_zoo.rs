//! Model-zoo benchmarks: the cost of routing best responses through
//! the generic front, and the per-scenario engines it dispatches to.
//!
//! * default Max/Sum through the front vs the specialised engines it
//!   forwards to — the dispatch itself must be free;
//! * the swap-neighbourhood enumeration (polynomial, exact at every
//!   view size);
//! * non-uniform pricing on bounded views (exact enumeration) and on
//!   full-knowledge views (deterministic hill climb);
//! * swap and non-uniform dynamics end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::{GameSpec, GameState, Objective, PlayerView, Scenario};
use ncg_dynamics::{run, DynamicsConfig};
use ncg_solver::{front, max_br, sum_br, Mode, SolverScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn er_state(n: usize, p: f64, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = ncg_graph::generators::gnp_connected(n, p, 100, &mut rng).unwrap();
    GameState::from_graph_random_ownership(&g, &mut rng)
}

fn bench_front_dispatch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_zoo_front_dispatch");
    group.sample_size(20);
    let state = er_state(40, 0.1, 21);
    let max_spec = GameSpec::max(1.0, 3);
    let sum_spec = GameSpec::sum(1.0, 2);
    let mut scratch = SolverScratch::new();
    group.bench_function("front_max", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 7, max_spec.k);
            front::best_response_with(&max_spec, &view, Mode::Exact, &mut scratch)
        })
    });
    group.bench_function("direct_max", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 7, max_spec.k);
            max_br::max_best_response_with(&max_spec, &view, Mode::Exact, &mut scratch)
        })
    });
    group.bench_function("front_sum", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 7, sum_spec.k);
            front::best_response_with(&sum_spec, &view, Mode::Exact, &mut scratch)
        })
    });
    group.bench_function("direct_sum", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 7, sum_spec.k);
            sum_br::sum_best_response_with(&sum_spec, &view, Mode::Exact, &mut scratch)
        })
    });
    group.finish();
}

fn bench_scenario_best_responses(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_zoo_scenarios");
    group.sample_size(20);
    let state = er_state(40, 0.1, 22);
    let mut scratch = SolverScratch::new();
    let swap = Scenario::swap(Objective::Max).spec(1.0, 1000);
    group.bench_function("swap_full_view", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 3, swap.k);
            front::best_response_with(&swap, &view, Mode::Exact, &mut scratch)
        })
    });
    let nonuni_bounded = Scenario::non_uniform(Objective::Max, 0xA5).spec(1.0, 2);
    group.bench_function("nonuniform_bounded_view", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 3, nonuni_bounded.k);
            front::best_response_with(&nonuni_bounded, &view, Mode::Exact, &mut scratch)
        })
    });
    let nonuni_full = Scenario::non_uniform(Objective::Max, 0xA5).spec(1.0, 1000);
    group.bench_function("nonuniform_full_view_hill_climb", |b| {
        b.iter(|| {
            let view = PlayerView::build(&state, 3, nonuni_full.k);
            front::best_response_with(&nonuni_full, &view, Mode::Exact, &mut scratch)
        })
    });
    group.finish();
}

fn bench_scenario_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_zoo_dynamics");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let tree = ncg_graph::generators::random_tree(40, &mut rng);
    let initial = GameState::from_graph_random_ownership(&tree, &mut rng);
    let swap = Scenario::swap(Objective::Max).spec(0.5, 3);
    group.bench_function("swap_tree_dynamics", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(swap)))
    });
    let nonuni = Scenario::non_uniform(Objective::Max, 0xA5).spec(0.5, 2);
    group.bench_function("nonuniform_tree_dynamics", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(nonuni)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_front_dispatch_overhead,
    bench_scenario_best_responses,
    bench_scenario_dynamics
);
criterion_main!(benches);
