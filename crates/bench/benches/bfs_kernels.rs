//! Scalar vs bit-parallel batched BFS kernels on the
//! `StateMetrics`-shaped workload: an all-sources sweep accumulating
//! per-source eccentricity, reach count, and status sum — exactly the
//! per-player quantities the metrics epilogue, the Figure 5 view-size
//! statistics, and the LKE certification sweep derive.
//!
//! Three arms per substrate: the scalar CSR per-source kernel (one
//! frontier per source), the 64-lane batched kernel pinned top-down,
//! and the batched kernel with the Beamer-style direction heuristic
//! (`Direction::Auto`). The aggregates of all three arms are asserted
//! equal *before* timing starts — the same bit-identicality the parity
//! proptests (`ncg-graph/tests/proptest_batch.rs`) and the CI
//! `determinism` job (`NCG_BATCH_BFS=1` vs `0`) gate.
//!
//! Substrates: sparse connected `G(n, 8/n)` at n ∈ {256, 1024, 4096}
//! and the Section 3.1 torus gadgets (the certification sweep's
//! instance family), labelled by their actual vertex counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_constructions::TorusGrid;
use ncg_graph::batch::{
    batch_bfs_opts, BatchDistances, BatchOptions, BatchScratch, Direction, WORD_LANES,
};
use ncg_graph::bfs::DistanceBuffer;
use ncg_graph::{generators, CsrGraph, Graph, NodeId, INFINITY};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// The scalar arm: one full BFS per source on the CSR layout, folding
/// the per-source aggregates exactly as `StateMetrics::measure`'s
/// scalar path does.
fn scalar_sweep(csr: &CsrGraph, buf: &mut DistanceBuffer) -> (u64, u64, u64) {
    let n = csr.node_count();
    let (mut ecc, mut reached, mut status) = (0u64, 0u64, 0u64);
    for u in 0..n as NodeId {
        ecc += csr.bfs(u, buf) as u64;
        reached += buf.visited().len() as u64;
        status +=
            buf.distances().iter().filter(|&&d| d != INFINITY).map(|&d| d as u64).sum::<u64>();
    }
    (ecc, reached, status)
}

/// The batched arms: ⌈n/64⌉ lane-group passes, aggregates read off the
/// level histograms (no distance materialisation).
fn batched_sweep(
    csr: &CsrGraph,
    direction: Direction,
    scratch: &mut BatchScratch,
    out: &mut BatchDistances,
    sources: &mut Vec<NodeId>,
) -> (u64, u64, u64) {
    let n = csr.node_count();
    let opts = BatchOptions { direction, ..BatchOptions::default() };
    let (mut ecc, mut reached, mut status) = (0u64, 0u64, 0u64);
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + WORD_LANES).min(n);
        sources.clear();
        sources.extend(lo as NodeId..hi as NodeId);
        batch_bfs_opts(csr, sources, &opts, scratch, out);
        for lane in 0..hi - lo {
            ecc += out.ecc(lane) as u64;
            reached += out.reached(lane) as u64;
            status += out.status_sum(lane);
        }
        lo = hi;
    }
    (ecc, reached, status)
}

fn bench_substrate(c: &mut Criterion, label: &str, g: &Graph) {
    let n = g.node_count();
    let csr = CsrGraph::from_graph(g);
    let mut buf = DistanceBuffer::with_capacity(n);
    let mut scratch = BatchScratch::new();
    let mut out = BatchDistances::new();
    let mut sources = Vec::with_capacity(WORD_LANES);
    // Bit-identicality gate before any timing: all three arms must
    // produce the same aggregate triple.
    let reference = scalar_sweep(&csr, &mut buf);
    for direction in [Direction::TopDown, Direction::Auto] {
        assert_eq!(
            batched_sweep(&csr, direction, &mut scratch, &mut out, &mut sources),
            reference,
            "batched {direction:?} sweep diverges from the scalar kernel on {label}/{n}"
        );
    }
    let mut group = c.benchmark_group("bfs_kernels");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new(format!("{label}_scalar"), n), &csr, |b, csr| {
        b.iter(|| black_box(scalar_sweep(csr, &mut buf)))
    });
    group.bench_with_input(BenchmarkId::new(format!("{label}_batched"), n), &csr, |b, csr| {
        b.iter(|| {
            black_box(batched_sweep(csr, Direction::TopDown, &mut scratch, &mut out, &mut sources))
        })
    });
    group.bench_with_input(BenchmarkId::new(format!("{label}_batched_auto"), n), &csr, |b, csr| {
        b.iter(|| {
            black_box(batched_sweep(csr, Direction::Auto, &mut scratch, &mut out, &mut sources))
        })
    });
    group.finish();
}

fn bench_gnp(c: &mut Criterion) {
    for n in [256usize, 1024, 4096] {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::gnp_connected(n, 8.0 / n as f64, 1000, &mut rng).unwrap();
        bench_substrate(c, "gnp", &g);
    }
}

fn bench_torus(c: &mut Criterion) {
    // Closed tori near the gnp sizes (`n = 6δ²` at ℓ = 2):
    // δ = 6 → 216 vertices, δ = 13 → 1014, δ = 26 → 4056.
    for (deltas, ell) in [([6u32, 6], 2u32), ([13, 13], 2), ([26, 26], 2)] {
        let torus = TorusGrid::closed(&deltas, ell).unwrap();
        bench_substrate(c, "torus", torus.state().graph());
    }
}

criterion_group!(benches, bench_gnp, bench_torus);
criterion_main!(benches);
