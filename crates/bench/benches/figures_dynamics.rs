//! Dynamics-figure benchmarks: one Criterion target per experimental
//! figure of Section 5 (Figures 5–10), each regenerating its series at
//! the smoke profile. These are end-to-end: workload generation,
//! round-robin dynamics with exact best responses, aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_experiments::{figure10, figure5, figure6, figure7, figure8, figure9, Profile};

fn profile() -> Profile {
    Profile::smoke()
}

fn bench_figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_view_size");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure5::run(&p)));
    group.finish();
}

fn bench_figure6(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_quality_vs_n");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure6::run(&p)));
    group.finish();
}

fn bench_figure7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_quality_vs_k");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure7::run(&p)));
    group.finish();
}

fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_degree_bought");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure8::run(&p)));
    group.finish();
}

fn bench_figure9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_unfairness");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure9::run(&p)));
    group.finish();
}

fn bench_figure10(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_convergence");
    group.sample_size(10);
    let p = profile();
    group.bench_function("smoke", |b| b.iter(|| figure10::run(&p)));
    group.finish();
}

criterion_group!(
    benches,
    bench_figure5,
    bench_figure6,
    bench_figure7,
    bench_figure8,
    bench_figure9,
    bench_figure10
);
criterion_main!(benches);
