//! Table regeneration benchmarks: Table I (random trees) and Table II
//! (Erdős–Rényi), at the smoke profile so a bench run stays fast.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_experiments::{table1, table2, Profile};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_random_trees");
    group.sample_size(10);
    let profile = Profile::smoke();
    group.bench_function("smoke_profile", |b| b.iter(|| table1::run(&profile)));
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_er_graphs");
    group.sample_size(10);
    let profile = Profile::smoke();
    group.bench_function("smoke_profile", |b| b.iter(|| table2::run(&profile)));
    group.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
