//! Best-response engine benchmarks: the Section 5.3 reduction (our
//! Gurobi replacement) across view sizes, exact vs greedy, Max vs Sum,
//! and the incremental engine against the seed per-`h` rebuild loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_solver::{max_br, sum_br, Mode, SolverScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tree_state(n: usize, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = ncg_graph::generators::random_tree(n, &mut rng);
    GameState::from_graph_random_ownership(&tree, &mut rng)
}

fn er_state(n: usize, p: f64, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = ncg_graph::generators::gnp_connected(n, p, 1000, &mut rng).unwrap();
    GameState::from_graph_random_ownership(&g, &mut rng)
}

fn bench_max_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_best_response_exact");
    group.sample_size(15);
    // Local views on a big tree.
    let tree = tree_state(200, 1);
    for k in [2u32, 5, 10] {
        let spec = GameSpec::max(1.0, k);
        let view = PlayerView::build(&tree, 0, k);
        group.bench_with_input(BenchmarkId::new("tree200_k", k), &view, |b, view| {
            b.iter(|| max_br::max_best_response(&spec, view, Mode::Exact))
        });
    }
    // Full-knowledge views on the paper's n = 100 ER row: the
    // incremental engine with reused scratch (the dynamics hot path),
    // the per-call-scratch variant, and the seed rebuild baseline.
    let er = er_state(100, 0.1, 2);
    let spec = GameSpec::max(1.0, 1000);
    let view = PlayerView::build(&er, 0, 1000);
    group.bench_function("er100_full_view", |b| {
        let mut scratch = SolverScratch::new();
        b.iter(|| max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut scratch))
    });
    group.bench_function("er100_full_view_cold_scratch", |b| {
        b.iter(|| max_br::max_best_response(&spec, &view, Mode::Exact))
    });
    group.bench_function("er100_full_view_rebuild", |b| {
        b.iter(|| max_br::max_best_response_cost_rebuild(&spec, &view))
    });
    group.finish();
}

fn bench_max_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_best_response_greedy");
    group.sample_size(15);
    let er = er_state(100, 0.1, 2);
    let spec = GameSpec::max(1.0, 1000);
    let view = PlayerView::build(&er, 0, 1000);
    group.bench_function("er100_full_view", |b| {
        b.iter(|| max_br::max_best_response(&spec, &view, Mode::Greedy))
    });
    group.finish();
}

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_best_response");
    group.sample_size(15);
    let tree = tree_state(80, 3);
    // Small view (k = 2, well under 20 candidates): subset enumeration
    // and the branch-and-bound on the same instance, with the results
    // pinned equal so the bench doubles as a parity check — a bound
    // bug here would fail loudly rather than quietly reporting a
    // faster-but-wrong engine.
    let spec2 = GameSpec::sum(1.0, 2);
    let view2 = PlayerView::build(&tree, 0, 2);
    let reference = ncg_core::equilibrium::best_response_exhaustive(&spec2, &view2).unwrap();
    group.bench_function("enumerate", |b| {
        b.iter(|| ncg_core::equilibrium::best_response_exhaustive(&spec2, &view2).unwrap())
    });
    group.bench_function("bnb", |b| {
        let mut scratch = SolverScratch::new();
        b.iter(|| {
            let d = sum_br::sum_best_response_with(&spec2, &view2, Mode::Exact, &mut scratch);
            assert_eq!(d.strategy_local, reference.strategy_local, "bnb diverged from enumeration");
            d
        })
    });
    // Full-knowledge view (63 candidates, far beyond any enumeration
    // cap): the exact branch-and-bound on the dynamics hot path with
    // warm scratch, against the hill-climb heuristic it replaced as
    // the `Mode::Exact` fallback. Same instance class as the
    // `perf_smoke.rs` pin (tree 64, seed 11, α = 2.0) — the α ≈ 1 tie
    // plateau is deliberately avoided here; DESIGN.md §9 explains why
    // no admissible bound can prune it.
    let tree_full = tree_state(64, 11);
    let spec_full = GameSpec::sum(2.0, 1000);
    let view_full = PlayerView::build(&tree_full, 0, 1000);
    group.bench_function("bnb_full_view", |b| {
        let mut scratch = SolverScratch::new();
        b.iter(|| sum_br::sum_best_response_with(&spec_full, &view_full, Mode::Exact, &mut scratch))
    });
    group.bench_function("hillclimb", |b| {
        b.iter(|| sum_br::sum_best_response(&spec_full, &view_full, Mode::Greedy))
    });
    group.finish();
}

fn bench_view_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_build");
    group.sample_size(20);
    let er = er_state(200, 0.05, 4);
    for k in [2u32, 4, 1000] {
        group.bench_with_input(BenchmarkId::new("er200_k", k), &k, |b, &k| {
            b.iter(|| PlayerView::build(&er, 17, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_exact, bench_max_greedy, bench_sum, bench_view_build);
criterion_main!(benches);
