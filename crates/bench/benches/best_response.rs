//! Best-response engine benchmarks: the Section 5.3 reduction (our
//! Gurobi replacement) across view sizes, exact vs greedy, Max vs Sum,
//! and the incremental engine against the seed per-`h` rebuild loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_core::{GameSpec, GameState, PlayerView};
use ncg_solver::{max_br, sum_br, Mode, SolverScratch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tree_state(n: usize, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = ncg_graph::generators::random_tree(n, &mut rng);
    GameState::from_graph_random_ownership(&tree, &mut rng)
}

fn er_state(n: usize, p: f64, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = ncg_graph::generators::gnp_connected(n, p, 1000, &mut rng).unwrap();
    GameState::from_graph_random_ownership(&g, &mut rng)
}

fn bench_max_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_best_response_exact");
    group.sample_size(15);
    // Local views on a big tree.
    let tree = tree_state(200, 1);
    for k in [2u32, 5, 10] {
        let spec = GameSpec::max(1.0, k);
        let view = PlayerView::build(&tree, 0, k);
        group.bench_with_input(BenchmarkId::new("tree200_k", k), &view, |b, view| {
            b.iter(|| max_br::max_best_response(&spec, view, Mode::Exact))
        });
    }
    // Full-knowledge views on the paper's n = 100 ER row: the
    // incremental engine with reused scratch (the dynamics hot path),
    // the per-call-scratch variant, and the seed rebuild baseline.
    let er = er_state(100, 0.1, 2);
    let spec = GameSpec::max(1.0, 1000);
    let view = PlayerView::build(&er, 0, 1000);
    group.bench_function("er100_full_view", |b| {
        let mut scratch = SolverScratch::new();
        b.iter(|| max_br::max_best_response_with(&spec, &view, Mode::Exact, &mut scratch))
    });
    group.bench_function("er100_full_view_cold_scratch", |b| {
        b.iter(|| max_br::max_best_response(&spec, &view, Mode::Exact))
    });
    group.bench_function("er100_full_view_rebuild", |b| {
        b.iter(|| max_br::max_best_response_cost_rebuild(&spec, &view))
    });
    group.finish();
}

fn bench_max_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_best_response_greedy");
    group.sample_size(15);
    let er = er_state(100, 0.1, 2);
    let spec = GameSpec::max(1.0, 1000);
    let view = PlayerView::build(&er, 0, 1000);
    group.bench_function("er100_full_view", |b| {
        b.iter(|| max_br::max_best_response(&spec, &view, Mode::Greedy))
    });
    group.finish();
}

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("sum_best_response");
    group.sample_size(15);
    let tree = tree_state(80, 3);
    // Small view: exact enumeration path.
    let spec2 = GameSpec::sum(1.0, 2);
    let view2 = PlayerView::build(&tree, 0, 2);
    group.bench_function("tree80_k2_exact", |b| {
        b.iter(|| sum_br::sum_best_response(&spec2, &view2, Mode::Exact))
    });
    // Large view: hill-climb path.
    let spec_full = GameSpec::sum(1.0, 1000);
    let view_full = PlayerView::build(&tree, 0, 1000);
    group.bench_function("tree80_full_hillclimb", |b| {
        b.iter(|| sum_br::sum_best_response(&spec_full, &view_full, Mode::Greedy))
    });
    group.finish();
}

fn bench_view_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_build");
    group.sample_size(20);
    let er = er_state(200, 0.05, 4);
    for k in [2u32, 4, 1000] {
        group.bench_with_input(BenchmarkId::new("er200_k", k), &k, |b, &k| {
            b.iter(|| PlayerView::build(&er, 17, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_exact, bench_max_greedy, bench_sum, bench_view_build);
criterion_main!(benches);
