//! Scale-tier benchmarks: simultaneous rounds on flat `G(n, p)`
//! states through the CSR-native responder path.
//!
//! * `scale_rounds/round_50k` — one simultaneous round on
//!   `G(5·10^4, avg deg 10)`: every player proposes against the
//!   frozen round-start network, conflicts resolve in canonical
//!   order, and the CSR rebuilds wholesale. This is the unit of work
//!   the `--smoke` CI lane times at `n = 10^5` and the `--full` tier
//!   scales to `10^6`.
//! * `scale_rounds/run_20k` — a short capped run (4 rounds) at
//!   `n = 2·10^4`, the shape of one `scale-dynamics --quick` cell:
//!   round one is dense (everyone is dirty), later rounds shrink to
//!   the balls the previous round touched.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::GameSpec;
use ncg_dynamics::scale::{run_scale, ScaleArena, ScaleConfig};
use ncg_experiments::workloads;

fn bench_scale_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_rounds");
    group.sample_size(10);

    let big = workloads::scale_er_states(50_000, 10.0, 1, 7).remove(0);
    let mut one_round = ScaleConfig::new(GameSpec::max(1.0, 2));
    one_round.max_rounds = 1;
    let mut arena = ScaleArena::new();
    group.bench_function("round_50k", |b| {
        b.iter(|| {
            let mut state = big.clone();
            run_scale(&mut state, &one_round, &mut arena)
        })
    });

    let small = workloads::scale_er_states(20_000, 10.0, 1, 7).remove(0);
    let mut capped = ScaleConfig::new(GameSpec::max(1.0, 2));
    capped.max_rounds = 4;
    group.bench_function("run_20k", |b| {
        b.iter(|| {
            let mut state = small.clone();
            run_scale(&mut state, &capped, &mut arena)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scale_rounds);
criterion_main!(benches);
