//! Lower-bound certification benchmarks: how fast the exact solver
//! certifies each gadget family as an LKE (`n` best responses per
//! certification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_constructions::{cycle, high_girth, TorusGrid};
use ncg_core::GameSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_cycle_cert(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_cycle_cert");
    group.sample_size(10);
    for n in [40usize, 120] {
        let spec = GameSpec::max(3.0, 3);
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| assert!(cycle::certify(n, &spec)))
        });
    }
    group.finish();
}

fn bench_girth_cert(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_girth_cert");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let gadget = high_girth::build(60, 3, 2, &mut rng).unwrap();
    let spec = GameSpec::max(5.0, 2);
    group.bench_function("n60_q3", |b| b.iter(|| assert!(gadget.certify(&spec))));
    group.finish();
}

fn bench_torus_certs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_torus_cert");
    group.sample_size(10);
    let max_torus = TorusGrid::for_theorem_312(2.0, 2, 4).unwrap();
    let max_spec = GameSpec::max(2.0, 2);
    group.bench_function("thm312_max_n48", |b| b.iter(|| assert!(max_torus.certify(&max_spec))));
    let sum_torus = TorusGrid::for_theorem_42(2, 4).unwrap();
    let sum_spec = GameSpec::sum(40.0, 2);
    group.bench_function("thm42_sum_n48", |b| b.iter(|| assert!(sum_torus.certify(&sum_spec))));
    group.finish();
}

criterion_group!(benches, bench_cycle_cert, bench_girth_cert, bench_torus_certs);
criterion_main!(benches);
