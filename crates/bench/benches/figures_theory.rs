//! Theory-figure benchmarks: the Figure 3 / Figure 4 region maps and
//! the Figure 1–2 torus constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_constructions::TorusGrid;
use ncg_experiments::{figure3, figure4, figures12, Profile};

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_regions");
    group.sample_size(20);
    let profile = Profile::smoke();
    group.bench_function("maxncg_map", |b| b.iter(|| figure3::run(&profile)));
    group.finish();
}

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_regions");
    group.sample_size(20);
    let profile = Profile::smoke();
    group.bench_function("sumncg_map", |b| b.iter(|| figure4::run(&profile)));
    group.finish();
}

fn bench_figures12(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_2_torus_build");
    group.sample_size(10);
    let profile = Profile::smoke();
    group.bench_function("both_figures_with_dot", |b| b.iter(|| figures12::run(&profile)));
    for (name, deltas, ell) in [("fig1", vec![15u32, 5], 2u32), ("fig2", vec![3, 4], 2)] {
        group.bench_with_input(BenchmarkId::new("construct", name), &(deltas, ell), |b, (d, l)| {
            b.iter(|| TorusGrid::closed(d, *l).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure3, bench_figure4, bench_figures12);
criterion_main!(benches);
