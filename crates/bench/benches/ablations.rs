//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * exact B&B dominating sets vs greedy approximation inside the
//!   dynamics (time; the quality delta is reported by the test suite);
//! * rayon-parallel sweeps vs a single-threaded pool;
//! * per-round metric collection overhead;
//! * profile-fingerprint cycle detection overhead (Hash-map profile
//!   cloning) measured through dynamics with a tiny round cap.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::{GameSpec, GameState};
use ncg_dynamics::{run, run_many, DynamicsConfig};
use ncg_experiments::workloads;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tree_initial(n: usize, seed: u64) -> GameState {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = ncg_graph::generators::random_tree(n, &mut rng);
    GameState::from_graph_random_ownership(&tree, &mut rng)
}

fn bench_exact_vs_greedy_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exact_vs_greedy");
    group.sample_size(10);
    let initial = tree_initial(60, 5);
    let spec = GameSpec::max(1.0, 3);
    group.bench_function("dynamics_exact", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(spec)))
    });
    group.bench_function("dynamics_greedy", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(spec).greedy()))
    });
    group.finish();
}

fn bench_parallel_vs_sequential_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_sweep");
    group.sample_size(10);
    let states = workloads::tree_states(30, 4, 77);
    let config = DynamicsConfig::new(GameSpec::max(1.0, 3));
    group.bench_function("rayon_default_pool", |b| b.iter(|| run_many(states.clone(), &config)));
    group.bench_function("single_thread_pool", |b| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        b.iter(|| pool.install(|| run_many(states.clone(), &config)))
    });
    group.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_per_round_metrics");
    group.sample_size(10);
    let initial = tree_initial(60, 6);
    let spec = GameSpec::max(0.5, 4);
    group.bench_function("metrics_off", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(spec)))
    });
    group.bench_function("metrics_on", |b| {
        b.iter(|| run(initial.clone(), &DynamicsConfig::new(spec).with_per_round_metrics()))
    });
    group.finish();
}

fn bench_sum_vs_max_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sum_vs_max");
    group.sample_size(10);
    let initial = tree_initial(30, 7);
    group.bench_function("max_k3", |b| {
        let config = DynamicsConfig::new(GameSpec::max(1.5, 3));
        b.iter(|| run(initial.clone(), &config))
    });
    group.bench_function("sum_k3", |b| {
        let config = DynamicsConfig::new(GameSpec::sum(1.5, 3));
        b.iter(|| run(initial.clone(), &config))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_vs_greedy_dynamics,
    bench_parallel_vs_sequential_sweep,
    bench_metrics_overhead,
    bench_sum_vs_max_dynamics
);
criterion_main!(benches);
