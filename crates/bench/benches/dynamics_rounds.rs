//! Dynamics-engine benchmarks for the incremental round machinery:
//!
//! * `dynamics_rounds` — one full dynamics run on a converged-tail
//!   instance (several rounds, sharply decaying move counts — the
//!   shape of every figure sweep in the paper), incremental view
//!   cache vs. seed-style per-round rebuild. The acceptance target
//!   for the cache is ≥ 3× on this pair.
//! * `sweep_skewed` — a small `(α, k, rep)` sweep whose cells have
//!   wildly different costs (local `k = 2` cells converge in a few
//!   cheap rounds; full-knowledge `k = 1000` cells do orders of
//!   magnitude more solver work), exercising the work-stealing rayon
//!   shim. Static chunking serialises behind the unlucky worker that
//!   owns the heavy cells.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::{GameSpec, GameState, Objective};
use ncg_dynamics::{run, DynamicsConfig};
use ncg_experiments::{sweep, workloads};
use ncg_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The converged-tail instance: a large grid region already at
/// equilibrium plus a successor-owned 40-cycle hanging off one corner,
/// reset to its collapsing profile. Re-convergence takes ~5 rounds
/// whose moves stay inside the cycle's neighbourhood, so the rebuild
/// path spends almost all its time re-confirming the 324 quiet grid
/// players round after round — the workload shape of the paper's
/// Figures 5–10 tails, distilled.
fn tail_instance() -> (GameState, DynamicsConfig) {
    let side = 18usize;
    let cycle = 40usize;
    let grid_n = side * side;
    let g = ncg_graph::generators::grid(side, side);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let grid_state = GameState::from_graph_random_ownership(&g, &mut rng);
    let mut strategies: Vec<Vec<NodeId>> =
        (0..grid_n).map(|u| grid_state.strategy(u as NodeId).to_vec()).collect();
    let base = grid_n as NodeId;
    for i in 0..cycle {
        strategies.push(vec![base + ((i + 1) % cycle) as NodeId]);
    }
    strategies[0].push(base); // tie the cycle to the grid corner
    let state = GameState::from_strategies(grid_n + cycle, strategies);
    let config = DynamicsConfig::new(GameSpec::max(0.5, 4));
    // Converge everything once (setup, untimed), then reset the cycle
    // tail to the collapsing successor profile: a near-equilibrium
    // state with one locally perturbed region.
    let eq = run(state, &config);
    assert!(eq.outcome.converged(), "setup run must converge");
    let mut perturbed = eq.state;
    for i in 0..cycle {
        perturbed.set_strategy(base + i as NodeId, vec![base + ((i + 1) % cycle) as NodeId]);
    }
    (perturbed, config)
}

fn bench_dynamics_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics_rounds");
    group.sample_size(10);
    let (initial, config) = tail_instance();
    {
        // Sanity: the pair really is the same computation.
        let a = run(initial.clone(), &config);
        let b = run(initial.clone(), &config.without_view_cache());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.state, b.state);
        assert!(a.outcome.rounds() >= 3, "want a multi-round tail instance");
    }
    group.bench_function("incremental", |b| b.iter(|| run(initial.clone(), &config)));
    let rebuild = config.without_view_cache();
    group.bench_function("rebuild", |b| b.iter(|| run(initial.clone(), &rebuild)));
    group.finish();
}

fn bench_sweep_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_skewed");
    group.sample_size(10);
    // 2 α × 2 k × 4 reps = 16 cells; the k = 1000 column dominates the
    // total work by a wide margin, so static chunking leaves most
    // workers idle while one grinds through the heavy cells.
    let states = workloads::tree_states(60, 4, 5);
    let alphas = [0.5, 2.0];
    let ks = [2u32, 1000];
    group.bench_function("tree60_heavy_tail", |b| {
        b.iter(|| sweep::sweep(&states, &alphas, &ks, Objective::Max, None))
    });
    group.finish();
}

criterion_group!(benches, bench_dynamics_rounds, bench_sweep_skewed);
criterion_main!(benches);
