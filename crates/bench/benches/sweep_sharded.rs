//! Benchmarks for the streaming sharded sweep engine:
//!
//! * `local_fold` — a full in-process sweep through the streaming
//!   engine (journal + canonical fold), the new default path of every
//!   figure module.
//! * `sharded2_merge` — the same grid as two shard runs plus a
//!   `merge`, quantifying the journal/merge overhead a multi-process
//!   deployment pays per process (the payoff — wall-clock halving —
//!   needs two actual machines/processes and is not measurable here).
//! * `warm_vs_cold` — the per-repetition `CacheArena` warm start
//!   against cold per-cell runs on the same grid; outcomes are
//!   bit-identical, only allocation reuse differs.

use criterion::{criterion_group, criterion_main, Criterion};
use ncg_core::Objective;
use ncg_experiments::engine::{self, SweepContext, SweepMode};
use ncg_experiments::sweep::{run_cells, Shard, SweepSpec};
use ncg_experiments::MetricGrid;

fn spec() -> SweepSpec {
    SweepSpec::tree("main", 40, 4, 5, vec![0.5, 2.0], vec![2, 4], Objective::Max)
}

fn fold_once(ctx: &SweepContext, specs: &[SweepSpec]) -> f64 {
    let mut grid = MetricGrid::new(specs[0].alphas.len(), specs[0].ks.len());
    engine::execute(ctx, "bench", specs, &mut |_, cell, rec| {
        grid.push(cell.ai, cell.ki, Some(rec.avg_view));
    });
    grid.summary(0, 0).mean
}

fn bench_sweep_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_sharded");
    group.sample_size(10);
    let specs = vec![spec()];

    group.bench_function("local_fold", |b| b.iter(|| fold_once(&SweepContext::local(), &specs)));

    let dir = std::env::temp_dir().join(format!("ncg_bench_sharded_{}", std::process::id()));
    group.bench_function("sharded2_merge", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            for index in 0..2 {
                let ctx = SweepContext {
                    mode: SweepMode::Shard { count: 2, index },
                    journal_dir: Some(dir.clone()),
                    warm_start: true,
                };
                engine::execute(&ctx, "bench", &specs, &mut |_, _, _| {});
            }
            let ctx = SweepContext {
                mode: SweepMode::Merge { count: 2 },
                journal_dir: Some(dir.clone()),
                warm_start: true,
            };
            fold_once(&ctx, &specs)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_warm_start");
    group.sample_size(10);
    let spec = spec();
    let states = spec.states();
    let run = |warm: bool| {
        let count = std::sync::atomic::AtomicUsize::new(0);
        run_cells(
            &states,
            &spec.alphas,
            &spec.ks,
            spec.objective,
            warm,
            Shard::all(),
            &|_| false,
            &|_, _| {
                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            },
            None,
            None,
        );
        count.into_inner()
    };
    assert_eq!(run(true), spec.cell_count());
    group.bench_function("warm", |b| b.iter(|| run(true)));
    group.bench_function("cold", |b| b.iter(|| run(false)));
    group.finish();
}

criterion_group!(benches, bench_sweep_sharded, bench_warm_vs_cold);
criterion_main!(benches);
