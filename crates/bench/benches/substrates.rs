//! Substrate micro-benchmarks: the BFS kernels, graph metrics,
//! generators and the dominating-set core that every experiment
//! bottoms out in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_graph::bfs::{bfs, DistanceBuffer};
use ncg_graph::{generators, metrics, view};
use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);
    for n in [100usize, 400] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp_connected(n, 8.0 / n as f64, 1000, &mut rng).unwrap();
        let mut buf = DistanceBuffer::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("single_source", n), &g, |b, g| {
            b.iter(|| bfs(g, 0, &mut buf))
        });
        // Ablation: the frozen CSR layout vs the mutable Vec<Vec<_>>.
        let csr = ncg_graph::CsrGraph::from_graph(&g);
        let mut csr_buf = DistanceBuffer::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("single_source_csr", n), &csr, |b, csr| {
            b.iter(|| csr.bfs(0, &mut csr_buf))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs_parallel", n), &g, |b, g| {
            b.iter(|| black_box(metrics::distance_matrix(g)))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs_csr_sequential", n), &csr, |b, csr| {
            b.iter(|| black_box(csr.distance_matrix()))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::gnp_connected(200, 0.05, 1000, &mut rng).unwrap();
    group.bench_function("diameter_n200", |b| b.iter(|| metrics::diameter(black_box(&g))));
    group.bench_function("girth_n200", |b| b.iter(|| metrics::girth(black_box(&g))));
    group.bench_function("power2_n200", |b| b.iter(|| view::power(black_box(&g), 2)));
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("random_tree_n200", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| generators::random_tree(200, &mut rng))
    });
    group.bench_function("gnp_n200_p0.1", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| generators::gnp(200, 0.1, &mut rng).unwrap())
    });
    group.bench_function("high_girth_n120_q3_g6", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            generators::high_girth(generators::HighGirthParams::new(120, 3, 6), &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_dominating(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominating_set");
    group.sample_size(15);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for (n, p) in [(60usize, 0.1), (120, 0.06)] {
        let g = generators::gnp_connected(n, p, 1000, &mut rng).unwrap();
        let covers: Vec<BitSet> = (0..n as u32)
            .map(|s| {
                let mut b = BitSet::new(n);
                b.insert(s);
                for &v in g.neighbors(s) {
                    b.insert(v);
                }
                b
            })
            .collect();
        let inst = DominationInstance { covers, universe: BitSet::full(n), forced: vec![] };
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &inst, |b, inst| {
            b.iter(|| inst.solve_exact(usize::MAX))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| inst.solve_greedy())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs, bench_metrics, bench_generators, bench_dominating);
criterion_main!(benches);
