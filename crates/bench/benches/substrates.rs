//! Substrate micro-benchmarks: the BFS kernels, graph metrics,
//! generators and the dominating-set core that every experiment
//! bottoms out in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncg_graph::bfs::{bfs, DistanceBuffer};
use ncg_graph::{generators, metrics, view};
use ncg_solver::bitset::BitSet;
use ncg_solver::dominating::DominationInstance;
use ncg_solver::engine::DominationEngine;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);
    for n in [100usize, 400] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp_connected(n, 8.0 / n as f64, 1000, &mut rng).unwrap();
        let mut buf = DistanceBuffer::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("single_source", n), &g, |b, g| {
            b.iter(|| bfs(g, 0, &mut buf))
        });
        // Ablation: the frozen CSR layout vs the mutable Vec<Vec<_>>.
        let csr = ncg_graph::CsrGraph::from_graph(&g);
        let mut csr_buf = DistanceBuffer::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("single_source_csr", n), &csr, |b, csr| {
            b.iter(|| csr.bfs(0, &mut csr_buf))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs_parallel", n), &g, |b, g| {
            b.iter(|| black_box(metrics::distance_matrix(g)))
        });
        group.bench_with_input(BenchmarkId::new("all_pairs_csr_sequential", n), &csr, |b, csr| {
            b.iter(|| black_box(csr.distance_matrix()))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::gnp_connected(200, 0.05, 1000, &mut rng).unwrap();
    group.bench_function("diameter_n200", |b| b.iter(|| metrics::diameter(black_box(&g))));
    group.bench_function("girth_n200", |b| b.iter(|| metrics::girth(black_box(&g))));
    group.bench_function("power2_n200", |b| b.iter(|| view::power(black_box(&g), 2)));
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("random_tree_n200", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| generators::random_tree(200, &mut rng))
    });
    group.bench_function("gnp_n200_p0.1", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| generators::gnp(200, 0.1, &mut rng).unwrap())
    });
    group.bench_function("high_girth_n120_q3_g6", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            generators::high_girth(generators::HighGirthParams::new(120, 3, 6), &mut rng).unwrap()
        })
    });
    group.finish();
}

fn graph_domination_instance(n: usize, p: f64, rng: &mut ChaCha8Rng) -> DominationInstance {
    let g = generators::gnp_connected(n, p, 1000, rng).unwrap();
    DominationInstance::closed_neighborhoods(&g, vec![])
}

fn bench_dominating(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominating_set");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    // Default instances sized so a local `cargo bench` terminates in
    // seconds (the ROADMAP's `exact_bnb/120` on G(120, 0.06) ran for
    // minutes per solve under the seed solver and still takes minutes
    // of total bench time after the engine speed-up; set
    // NCG_BENCH_HARD=1 to include it for before/after measurements).
    let mut sizes = vec![(60usize, 0.1), (100, 0.08)];
    if std::env::var_os("NCG_BENCH_HARD").is_some_and(|v| v != "0") {
        sizes.push((120, 0.06));
    }
    for (n, p) in sizes {
        let inst = graph_domination_instance(n, p, &mut rng);
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &inst, |b, inst| {
            b.iter(|| inst.solve_exact(usize::MAX))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| inst.solve_greedy())
        });
    }
    group.finish();
}

/// The best-response access pattern: one domination solve per
/// eccentricity guess over *nested* coverage (radius-`r` balls,
/// `r = 0..R`). `exact_bnb_incremental` drives one persistent
/// [`DominationEngine`] across the guesses — BFS-order cursor growth,
/// allocations recycled via `reset` — while `exact_bnb_rebuild`
/// re-scans the distance matrix and reconstructs a fresh
/// [`DominationInstance`] (coverage clones and all) per guess, exactly
/// as the seed `max_br.rs` loop did. Identical solves, different
/// setup — the gap is the engine rearchitecture's win (the
/// whole-path version is `max_best_response/er100_full_view` vs
/// `…_rebuild` in `best_response.rs`).
fn bench_dominating_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominating_set");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 80usize;
    let g = generators::gnp_connected(n, 0.05, 1000, &mut rng).unwrap();
    let csr = ncg_graph::CsrGraph::from_graph(&g);
    let mut buf = ncg_graph::bfs::DistanceBuffer::with_capacity(n);
    let dist: Vec<Vec<u32>> = (0..n as u32)
        .map(|s| {
            csr.bfs(s, &mut buf);
            buf.distances().to_vec()
        })
        .collect();
    // Per-source visit orders (non-decreasing distance) for the cursor
    // growth, as `sweep_minus_center` records them in the solver.
    let orders: Vec<Vec<(u32, u32)>> = (0..n)
        .map(|s| {
            let mut o: Vec<(u32, u32)> = (0..n as u32).map(|v| (dist[s][v as usize], v)).collect();
            o.sort_unstable();
            o
        })
        .collect();
    let radii = 0..6u32;
    group.bench_function("exact_bnb_incremental", |b| {
        let mut engine = DominationEngine::new(BitSet::full(n), &[]);
        let mut cursors = vec![0usize; n];
        b.iter(|| {
            engine.reset(BitSet::full(n), &[]);
            cursors.iter_mut().for_each(|c| *c = 0);
            let mut total = 0usize;
            for r in radii.clone() {
                for (s, cursor) in cursors.iter_mut().enumerate() {
                    while *cursor < n && orders[s][*cursor].0 <= r {
                        engine.add_pair(s as u32, orders[s][*cursor].1);
                        *cursor += 1;
                    }
                }
                if let Some(sol) = engine.solve_exact(usize::MAX) {
                    total += sol.len();
                }
            }
            total
        })
    });
    group.bench_function("exact_bnb_rebuild", |b| {
        b.iter(|| {
            let mut covers: Vec<BitSet> = vec![BitSet::new(n); n];
            let mut total = 0usize;
            for r in radii.clone() {
                for s in 0..n {
                    for v in 0..n as u32 {
                        if dist[s][v as usize] == r {
                            covers[s].insert(v);
                        }
                    }
                }
                let inst = DominationInstance {
                    covers: covers.clone(),
                    universe: BitSet::full(n),
                    forced: vec![],
                };
                if let Some(sol) = inst.solve_exact(usize::MAX) {
                    total += sol.len();
                }
            }
            total
        })
    });
    group.finish();
}

/// The parallel-vs-sequential pair of the deterministic parallel
/// branch-and-bound (DESIGN.md §8) on the default multi-worker
/// instance: one `G(110, 0.07)` domination solve in the hundreds of
/// milliseconds — big enough that the root-frontier split and the
/// per-worker engine snapshots amortise, small enough for a default
/// `cargo bench` run. `exact_bnb_parallel` fans out over
/// `rayon::current_num_threads()` workers (pin it with an installed
/// pool or `NCG_THREADS` through the experiments binary); on a
/// multi-core machine the pair shows the §8 speed-up, and the results
/// are asserted bit-identical in-bench before timing starts — the
/// same invariance the CI `determinism` job gates end-to-end.
fn bench_dominating_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominating_set");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let inst = graph_domination_instance(110, 0.07, &mut rng);
    let workers = rayon::current_num_threads().max(2);
    let mut seq_engine = DominationEngine::from_instance(&inst);
    let mut par_engine = DominationEngine::from_instance(&inst);
    assert_eq!(
        seq_engine.solve_exact(usize::MAX),
        par_engine.solve_exact_parallel(usize::MAX, workers, 8),
        "parallel solver must be bit-identical to sequential"
    );
    group.bench_with_input(BenchmarkId::new("exact_bnb_sequential", 110), &(), |b, ()| {
        b.iter(|| black_box(seq_engine.solve_exact(usize::MAX)))
    });
    group.bench_with_input(BenchmarkId::new("exact_bnb_parallel", 110), &(), |b, ()| {
        b.iter(|| black_box(par_engine.solve_exact_parallel(usize::MAX, workers, 8)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_metrics,
    bench_generators,
    bench_dominating,
    bench_dominating_incremental,
    bench_dominating_parallel
);
criterion_main!(benches);
