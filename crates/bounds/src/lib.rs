//! # ncg-bounds — the paper's PoA bounds as executable formulas
//!
//! Closed-form evaluators for every Price-of-Anarchy bound of the
//! paper, plus the `(α, k)` region classification of Figures 3 and 4.
//! Everything here is *asymptotic shape with constants set to 1*: the
//! harness prints these curves next to measured qualities so the
//! trends can be compared (EXPERIMENTS.md), exactly as the paper
//! overlays its theoretical trend in Figure 7.
//!
//! MaxNCG (Section 3):
//!
//! * Lemma 3.1 (cycle): `PoA = Ω(n/(1+α))` for `α ≥ k−1`.
//! * Lemma 3.2 (high girth): `PoA = Ω(n^{1/(2k−2)})` for
//!   `2 ≤ k = o(log n)`, `α ≥ 1`.
//! * Theorem 3.12 (torus): `PoA = Ω(n/(α·2^{(log(k/ℓ)+3)·log(k/ℓ)}))`
//!   with `ℓ = ⌈α⌉`, for `1 < α ≤ k ≤ 2^{√(log n) − 3}`.
//! * Theorem 3.18 (upper): `O(n^{2/min{α,2k}} + n/(1+α))` for
//!   `α ≥ k−1`, and `O(n^{2/α} + min{nα/k², nk/(α·2^{¼log²(k/α)})})`
//!   for `α ≤ k−1`.
//! * Corollary 3.14 (gray region): for
//!   `k > c·min{n, ∛(nα²), α·⁴√(log n)}` every LKE is full-knowledge,
//!   so LKE ≡ NE.
//!
//! SumNCG (Section 4): Theorems 4.2, 4.3 and 4.4.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Base-2 logarithm with a guard for arguments `< 1` (returns 0).
fn log2p(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

/// A lower/upper bound pair for one `(n, α, k)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Best applicable lower bound (≥ 1; PoA is always ≥ 1).
    pub lower: f64,
    /// Best applicable upper bound (≤ n·something; capped at `n²`).
    pub upper: f64,
}

/// MaxNCG bounds (Section 3 of the paper).
pub mod maxncg {
    use super::*;

    /// Lemma 3.1: the cycle lower bound `n/(1+α)`, applicable for
    /// `α ≥ k−1` (and `n ≥ 2k+2`).
    pub fn lb_cycle(n: usize, alpha: f64, k: u32) -> Option<f64> {
        if alpha >= k as f64 - 1.0 && n as f64 >= 2.0 * k as f64 + 2.0 {
            Some(n as f64 / (1.0 + alpha))
        } else {
            None
        }
    }

    /// Lemma 3.2: the high-girth lower bound `n^{1/(2k−2)}`,
    /// applicable for `2 ≤ k` with `k = o(log n)` (we require
    /// `k ≤ log₂ n`) and `α ≥ 1`.
    pub fn lb_high_girth(n: usize, alpha: f64, k: u32) -> Option<f64> {
        if k >= 2 && (k as f64) <= log2p(n as f64) && alpha >= 1.0 {
            Some((n as f64).powf(1.0 / (2.0 * k as f64 - 2.0)))
        } else {
            None
        }
    }

    /// Theorem 3.12: the torus lower bound
    /// `n / (α · 2^{(log(k/ℓ)+3)·log(k/ℓ)})` with `ℓ = ⌈α⌉`,
    /// applicable for `1 < α ≤ k ≤ 2^{√(log₂ n) − 3}`.
    pub fn lb_torus(n: usize, alpha: f64, k: u32) -> Option<f64> {
        let k_cap = 2f64.powf(log2p(n as f64).sqrt() - 3.0);
        if alpha > 1.0 && alpha <= k as f64 && (k as f64) <= k_cap {
            let ell = alpha.ceil();
            let r = log2p(k as f64 / ell);
            Some(n as f64 / (alpha * 2f64.powf((r + 3.0) * r)))
        } else {
            None
        }
    }

    /// The best applicable MaxNCG lower bound (≥ 1).
    pub fn lower_bound(n: usize, alpha: f64, k: u32) -> f64 {
        [lb_cycle(n, alpha, k), lb_high_girth(n, alpha, k), lb_torus(n, alpha, k)]
            .into_iter()
            .flatten()
            .fold(1.0, f64::max)
    }

    /// The density term of Theorem 3.18: `n^{2/min{α, 2k}}`.
    pub fn ub_density(n: usize, alpha: f64, k: u32) -> f64 {
        let denom = alpha.min(2.0 * k as f64).max(f64::MIN_POSITIVE);
        (n as f64).powf(2.0 / denom)
    }

    /// The diameter term of Theorem 3.18 for `α ≤ k−1`:
    /// `min{nα/k², nk/(α·2^{¼·log²(k/α)})}`.
    pub fn ub_diameter(n: usize, alpha: f64, k: u32) -> f64 {
        let n = n as f64;
        let k = k as f64;
        let t1 = n * alpha / (k * k);
        let r = log2p(k / alpha);
        let t2 = n * k / (alpha * 2f64.powf(0.25 * r * r));
        t1.min(t2)
    }

    /// Theorem 3.18: the MaxNCG PoA upper bound (capped at `n²`).
    pub fn upper_bound(n: usize, alpha: f64, k: u32) -> f64 {
        let nf = n as f64;
        let ub = if alpha >= k as f64 - 1.0 {
            ub_density(n, alpha, k) + nf / (1.0 + alpha)
        } else {
            (nf).powf(2.0 / alpha.max(f64::MIN_POSITIVE)) + ub_diameter(n, alpha, k)
        };
        ub.min(nf * nf).max(1.0)
    }

    /// Both bounds at once.
    pub fn bounds(n: usize, alpha: f64, k: u32) -> Bounds {
        Bounds { lower: lower_bound(n, alpha, k), upper: upper_bound(n, alpha, k) }
    }

    /// Corollary 3.14 threshold (constants = 1): the view radius above
    /// which every LKE is a full-knowledge equilibrium,
    /// `min{n, ∛(nα²), α·⁴√(log₂ n)}` (only meaningful for `α ≤ k−1`).
    pub fn full_knowledge_threshold(n: usize, alpha: f64) -> f64 {
        let nf = n as f64;
        nf.min((nf * alpha * alpha).cbrt()).min(alpha * log2p(nf).powf(0.25))
    }

    /// Whether `(α, k)` lies in the gray `LKE ≡ NE` region of
    /// Figure 3 (with constants = 1).
    pub fn lke_equals_ne(n: usize, alpha: f64, k: u32) -> bool {
        (k as f64) >= (n as f64)
            || (alpha <= k as f64 - 1.0 && (k as f64) > full_knowledge_threshold(n, alpha))
    }

    /// The named `(α, k)` regions of Figure 3.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
    pub enum Region {
        /// Gray region: every LKE has full knowledge; LKE ≡ NE.
        FullKnowledge,
        /// Region ① — `k` just above `α+1`, small `α`, small `k`:
        /// torus + girth LBs vs density + diameter UBs.
        R1,
        /// Region ② — below `k = α+1` with `k ≤ log n`, `α ≤ n`:
        /// tight `Θ(max{n/(1+α), n^{1/Θ(k)}})`.
        R2,
        /// Region ③ — below the line, `k ≤ log n`, `α ≥ n`: tight
        /// `Θ(n^{1/Θ(k)})`.
        R3,
        /// Region ④ — above the line, `k ≤ 2^{√log n}`, `α ≤ log n`.
        R4,
        /// Region ⑤ — above the line, `k ≤ 2^{√log n}`, `α ≥ log n`.
        R5,
        /// Region ⑥ — below the line, `k ≥ log n`: tight `Θ(n/(1+α))`.
        R6,
        /// Region ⑦ — above the line, `k ≥ 2^{√log n}`, `α ≤ log n`:
        /// upper bounds only.
        R7,
        /// Region ⑧ — above the line, `k ≥ 2^{√log n}`, `α ≥ log n`:
        /// upper bounds only.
        R8,
    }

    /// Classifies `(α, k)` into the Figure 3 regions (constants = 1;
    /// boundary curves as documented on [`Region`]).
    pub fn region(n: usize, alpha: f64, k: u32) -> Region {
        if lke_equals_ne(n, alpha, k) {
            return Region::FullKnowledge;
        }
        let kf = k as f64;
        let logn = log2p(n as f64);
        let k_mid = 2f64.powf(logn.sqrt());
        if alpha >= kf - 1.0 {
            // Below (or on) the line k = α + 1.
            if kf >= logn {
                Region::R6
            } else if alpha >= n as f64 {
                Region::R3
            } else if alpha >= kf.max(1.0) * 2.0 && kf <= logn {
                // Deep below the line but k still small: both the
                // cycle and girth bounds live here.
                Region::R2
            } else {
                Region::R1
            }
        } else {
            // Above the line.
            if kf <= k_mid {
                if alpha <= logn {
                    Region::R4
                } else {
                    Region::R5
                }
            } else if alpha <= logn {
                Region::R7
            } else {
                Region::R8
            }
        }
    }
}

/// SumNCG bounds (Section 4 of the paper).
pub mod sumncg {
    /// Theorem 4.2 (torus, `d=2`, `ℓ=2`): for `α ≥ 4k³` and
    /// `k ≤ √(2n/3) − 4`: `Ω(n/k)` if `α ≤ n`, else `Ω(1 + n²/(kα))`.
    pub fn lb_torus(n: usize, alpha: f64, k: u32) -> Option<f64> {
        let nf = n as f64;
        let kf = k as f64;
        if alpha >= 4.0 * kf.powi(3) && kf <= (2.0 * nf / 3.0).sqrt() - 4.0 {
            if alpha <= nf {
                Some(nf / kf)
            } else {
                Some(1.0 + nf * nf / (kf * alpha))
            }
        } else {
            None
        }
    }

    /// Theorem 4.3 (high girth): for `α ≥ kn` and `k ≥ 2`:
    /// `Ω(n^{1/(2k−2)})`.
    pub fn lb_high_girth(n: usize, alpha: f64, k: u32) -> Option<f64> {
        if alpha >= k as f64 * n as f64 && k >= 2 {
            Some((n as f64).powf(1.0 / (2.0 * k as f64 - 2.0)))
        } else {
            None
        }
    }

    /// Best applicable SumNCG lower bound (≥ 1).
    pub fn lower_bound(n: usize, alpha: f64, k: u32) -> f64 {
        [lb_torus(n, alpha, k), lb_high_girth(n, alpha, k)]
            .into_iter()
            .flatten()
            .fold(1.0, f64::max)
    }

    /// Theorem 4.4: for `k > 1 + 2√α` every equilibrium player sees
    /// the whole graph, so LKE ≡ NE.
    pub fn lke_equals_ne(alpha: f64, k: u32) -> bool {
        k as f64 > 1.0 + 2.0 * alpha.sqrt()
    }

    /// The paper's "PoA is constant" region: `α ≤ n` and LKE ≡ NE
    /// (then the full-knowledge SumNCG PoA, mostly constant, applies).
    pub fn poa_constant(n: usize, alpha: f64, k: u32) -> bool {
        alpha <= n as f64 && lke_equals_ne(alpha, k)
    }
}

/// The Figure 7 benchmark trend: with `n` and `α ≥ 2` fixed, the
/// paper states its Theorem 3.18 upper bound "reduces to
/// `f(k) = O(k / 2^{log² k})`" — the bold red guideline of Figure 7,
/// monotone decreasing over the plotted `k ∈ [2, 30]`. Evaluated with
/// unit constants (callers normalise at an anchor `k`).
pub fn fig7_trend(k: u32) -> f64 {
    let r = log2p(k as f64);
    k as f64 / 2f64.powf(r * r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_lb_requires_alpha_at_least_k_minus_1() {
        assert!(maxncg::lb_cycle(100, 3.0, 4).is_some());
        assert_eq!(maxncg::lb_cycle(100, 1.0, 4), None);
        // n too small for the cycle construction:
        assert_eq!(maxncg::lb_cycle(8, 10.0, 4), None);
        let lb = maxncg::lb_cycle(100, 4.0, 2).unwrap();
        assert!((lb - 20.0).abs() < 1e-12);
    }

    #[test]
    fn high_girth_lb_window() {
        assert!(maxncg::lb_high_girth(1 << 20, 1.0, 3).is_some());
        assert_eq!(maxncg::lb_high_girth(1 << 20, 0.5, 3), None);
        assert_eq!(maxncg::lb_high_girth(1 << 20, 1.0, 1), None);
        // k beyond log n:
        assert_eq!(maxncg::lb_high_girth(64, 1.0, 10), None);
        // Value: n^{1/(2k−2)}.
        let v = maxncg::lb_high_girth(1 << 12, 2.0, 3).unwrap();
        assert!((v - (4096f64).powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn torus_lb_window_and_monotonicity() {
        // The window k ≤ 2^{√(log n) − 3} needs astronomically large n
        // for nontrivial k — exactly the paper's point that the bound
        // is asymptotic. log₂ n = 40 allows k up to ≈ 10.
        let n = 1usize << 40;
        assert!(maxncg::lb_torus(n, 2.0, 4).is_some());
        assert_eq!(maxncg::lb_torus(n, 1.0, 4), None, "needs α > 1");
        assert_eq!(maxncg::lb_torus(n, 5.0, 4), None, "needs α ≤ k");
        assert_eq!(maxncg::lb_torus(1 << 10, 2.0, 8), None, "k above the cap");
        // For fixed α the bound decreases in k (bigger views help).
        let a = maxncg::lb_torus(n, 2.0, 2).unwrap();
        let b = maxncg::lb_torus(n, 2.0, 8).unwrap();
        assert!(a > b);
        // When k = Θ(α) the bound is Ω(n/α): at k = ⌈α⌉ exactly n/α.
        let c = maxncg::lb_torus(n, 4.0, 4).unwrap();
        assert!((c - n as f64 / 4.0).abs() < 1e-3);
    }

    #[test]
    fn lower_bound_is_max_of_applicable() {
        let n = 1 << 16;
        let lb = maxncg::lower_bound(n, 3.0, 2);
        let cyc = maxncg::lb_cycle(n, 3.0, 2).unwrap();
        assert!(lb >= cyc);
        // Nothing applicable → 1.
        assert_eq!(maxncg::lower_bound(10, 0.5, 9), 1.0);
    }

    #[test]
    fn upper_bound_regimes() {
        let n = 10_000;
        // α ≥ k−1: density + cycle-ish diameter term.
        let ub = maxncg::upper_bound(n, 10.0, 3);
        assert!(ub >= n as f64 / 11.0);
        // α ≤ k−1: diameter terms shrink as k grows.
        let u1 = maxncg::upper_bound(n, 2.0, 8);
        let u2 = maxncg::upper_bound(n, 2.0, 64);
        assert!(u2 <= u1, "wider views can only improve the bound: {u2} vs {u1}");
        // Cap at n².
        assert!(maxncg::upper_bound(100, 0.01, 1000) <= 100.0 * 100.0 + 1e-9);
    }

    #[test]
    fn sandwich_lower_le_upper_on_grid() {
        // The asymptotic shapes with unit constants should still
        // sandwich on a broad grid; tolerate a constant factor of 8
        // for the few boundary cells where the Θ-constants matter.
        for &n in &[1usize << 10, 1 << 14, 1 << 18] {
            for &alpha in &[1.5, 2.0, 4.0, 16.0, 256.0] {
                for &k in &[1u32, 2, 3, 5, 8, 16, 64] {
                    let b = maxncg::bounds(n, alpha, k);
                    assert!(
                        b.lower <= 8.0 * b.upper + 1e-9,
                        "n={n} α={alpha} k={k}: lower {} > upper {}",
                        b.lower,
                        b.upper
                    );
                }
            }
        }
    }

    #[test]
    fn gray_region_grows_with_k() {
        let n = 100_000;
        // For fixed α, large enough k must reach the gray region.
        assert!(maxncg::lke_equals_ne(n, 2.0, n as u32));
        assert!(!maxncg::lke_equals_ne(n, 2.0, 2));
        // Threshold formula sanity: bounded by n.
        assert!(maxncg::full_knowledge_threshold(n, 1e9) <= n as f64);
    }

    #[test]
    fn region_classification_basics() {
        use maxncg::Region;
        let n = 1 << 20;
        // Huge k ⇒ gray.
        assert_eq!(maxncg::region(n, 2.0, 1 << 21), Region::FullKnowledge);
        // Below the line with big k ⇒ R6.
        assert_eq!(maxncg::region(n, 1e6, 40), Region::R6);
        // Below the line, small k, α ≥ n ⇒ R3.
        assert_eq!(maxncg::region(n, 2e6, 3), Region::R3);
        // Below the line, small k, moderate α ⇒ R2.
        assert_eq!(maxncg::region(n, 100.0, 3), Region::R2);
        // Just above the line, small k and α ⇒ R4 (or R1 near the
        // boundary) — must be one of the above-line regions. (k = 6
        // would already cross the α·⁴√log n gray threshold at α = 2.)
        let r = maxncg::region(n, 2.0, 4);
        assert!(matches!(r, Region::R1 | Region::R4), "got {r:?}");
    }

    #[test]
    fn sum_torus_lb_regimes() {
        let n = 10_000;
        // α between 4k³ and n: Ω(n/k).
        let lb = sumncg::lb_torus(n, 500.0, 4).unwrap();
        assert!((lb - n as f64 / 4.0).abs() < 1e-9);
        // α above n: Ω(1 + n²/(kα)).
        let lb = sumncg::lb_torus(n, 2e7, 4).unwrap();
        assert!((lb - (1.0 + (n * n) as f64 / (4.0 * 2e7))).abs() < 1e-6);
        // Window constraints.
        assert_eq!(sumncg::lb_torus(n, 10.0, 4), None, "α < 4k³");
        assert_eq!(sumncg::lb_torus(30, 1e9, 20), None, "k too big for n");
    }

    #[test]
    fn sum_high_girth_lb() {
        assert!(sumncg::lb_high_girth(1000, 5000.0, 3).is_some());
        assert_eq!(sumncg::lb_high_girth(1000, 100.0, 3), None);
        assert_eq!(sumncg::lb_high_girth(1000, 5000.0, 1), None);
    }

    #[test]
    fn sum_ne_collapse_threshold() {
        assert!(sumncg::lke_equals_ne(4.0, 6));
        assert!(!sumncg::lke_equals_ne(4.0, 5));
        assert!(sumncg::poa_constant(1000, 4.0, 6));
        assert!(!sumncg::poa_constant(3, 4.0, 6), "α > n breaks the constant regime");
    }

    #[test]
    fn fig7_trend_shape() {
        // The paper's guideline decreases over the plotted range
        // k ∈ [2, 30]: the 2^{log²k} factor dominates the linear k.
        for k in 2..30u32 {
            assert!(fig7_trend(k + 1) < fig7_trend(k), "k = {k}");
        }
        // Positivity.
        for k in 1..100 {
            assert!(fig7_trend(k) > 0.0);
        }
    }
}
