//! Minimal aligned-text and CSV table rendering.
//!
//! The figure/table binaries print the same rows the paper reports;
//! this renderer keeps them readable in a terminal and loadable in any
//! plotting tool via CSV.

/// Output flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableStyle {
    /// Space-padded, pipe-separated columns for terminals.
    #[default]
    Text,
    /// RFC-4180-ish CSV (fields with commas/quotes get quoted).
    Csv,
}

/// A simple rectangular table: a header and rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders in the requested style.
    pub fn render(&self, style: TableStyle) -> String {
        match style {
            TableStyle::Text => self.render_text(),
            TableStyle::Csv => self.render_csv(),
        }
    }

    fn render_text(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            row.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join(" | ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    fn render_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new(["n", "diameter"]);
        t.push_row(["20", "10.65 ± 0.76"]);
        t.push_row(["200", "43.20 ± 3.95"]);
        let text = t.render(TableStyle::Text);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n  "));
        assert!(lines[1].contains("-+-"));
        assert!(lines[2].contains("10.65"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1,5", "plain"]);
        t.push_row(["quote\"inside", "x"]);
        let csv = t.render(TableStyle::Csv);
        assert!(csv.contains("\"1,5\",plain"));
        assert!(csv.contains("\"quote\"\"inside\",x"));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
