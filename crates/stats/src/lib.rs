//! # ncg-stats — summary statistics for the experiment harness
//!
//! The paper reports every experimental quantity as a mean over 20
//! repetitions with a 95% confidence interval. This crate provides
//! exactly that: [`Summary`] (mean, sample standard deviation,
//! Student-t 95% CI, min/max), the streaming [`Accumulator`] that
//! folds the same statistics one observation at a time (the sweep
//! engine's `O(grid)`-memory aggregation path), plus lightweight
//! text/CSV table rendering used by the figure and table binaries.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod summary;
mod table;

pub use summary::{t_critical_975, Accumulator, Summary};
pub use table::{Table, TableStyle};
