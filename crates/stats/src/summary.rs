use serde::{Deserialize, Serialize};

/// Two-sided 97.5% Student-t critical values for `df = 1..=30`;
/// beyond 30 degrees of freedom the normal approximation `1.96` is
/// used (well within the rounding the paper reports).
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for the given degrees of
/// freedom (`df ≥ 1`); `1.96` beyond `df = 30`.
pub fn t_critical_975(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_975[df - 1],
        _ => 1.96,
    }
}

/// Summary statistics of a sample: count, mean, sample standard
/// deviation, min, max, and the Student-t 95% confidence half-width —
/// the `mean ± hw` format of the paper's Tables I–II and error bars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean (0 for empty samples).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for `n < 2`).
    pub sd: f64,
    /// Smallest observation (`+∞` for empty samples).
    pub min: f64,
    /// Largest observation (`−∞` for empty samples).
    pub max: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`t₀.₉₇₅(n−1) · sd / √n`; 0 for `n < 2`).
    pub ci95: f64,
}

impl Summary {
    /// Summarises a sample.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                sd: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                ci95: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        let (sd, ci95) = if n >= 2 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            let sd = var.sqrt();
            (sd, t_critical_975(n - 1) * sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        Summary { n, mean, sd, min, max, ci95 }
    }

    /// Summarises after converting from any numeric-like iterator.
    pub fn of_iter(values: impl IntoIterator<Item = f64>) -> Self {
        let v: Vec<f64> = values.into_iter().collect();
        Self::of(&v)
    }

    /// `mean ± ci95` with the given precision — the cell format used
    /// by Tables I and II.
    pub fn display(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95, p = precision)
    }
}

/// Streaming (Welford) accumulator producing the same [`Summary`]
/// shape without ever materialising the sample: push observations one
/// at a time, merge partial accumulators, and read the summary at any
/// point. The sweep engine folds one accumulator per `(α, k)` grid
/// cell, so a 36 000-run sweep keeps `O(grid)` state instead of
/// `O(cells)` samples.
///
/// Mean and variance follow Welford's update; `merge` uses the
/// Chan et al. pairwise combination. Floating-point results can
/// differ from the two-pass [`Summary::of`] in the last few ULPs, but
/// a fixed push order yields bit-identical accumulators — the
/// property the sharded sweep's byte-parity guarantee rests on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observations folded in so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in (Welford update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator in, as if its observations had been
    /// pushed here (up to floating-point association).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let d = other.mean - self.mean;
        self.mean += d * other.count as f64 / total as f64;
        self.m2 += other.m2 + d * d * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The [`Summary`] of everything pushed so far — same field
    /// conventions as [`Summary::of`] (empty samples keep mean 0 and
    /// infinite min/max; `sd`/`ci95` are 0 below two observations).
    pub fn summary(&self) -> Summary {
        let n = self.count as usize;
        let (sd, ci95) = if n >= 2 {
            let sd = (self.m2 / (n - 1) as f64).sqrt();
            (sd, t_critical_975(n - 1) * sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        Summary { n, mean: self.mean, sd, min: self.min, max: self.max, ci95 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn known_sample_statistics() {
        // Sample 1..=5: mean 3, variance 2.5, sd ≈ 1.5811.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.sd - 2.5f64.sqrt()).abs() < 1e-12);
        // CI half width: t(4)=2.776 · sd/√5.
        let expect = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn paper_repetition_count_uses_t19() {
        // 20 repetitions (the paper's setting) → df 19 → t = 2.093.
        assert!((t_critical_975(19) - 2.093).abs() < 1e-12);
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = Summary::of(&values);
        let sd = s.sd;
        assert!((s.ci95 - 2.093 * sd / 20f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn t_table_edges() {
        assert_eq!(t_critical_975(0), f64::INFINITY);
        assert!((t_critical_975(1) - 12.706).abs() < 1e-12);
        assert!((t_critical_975(30) - 2.042).abs() < 1e-12);
        assert!((t_critical_975(31) - 1.96).abs() < 1e-12);
        assert!((t_critical_975(10_000) - 1.96).abs() < 1e-12);
    }

    #[test]
    fn singleton_and_empty() {
        let s1 = Summary::of(&[7.5]);
        assert_eq!(s1.mean, 7.5);
        assert_eq!(s1.sd, 0.0);
        assert_eq!(s1.ci95, 0.0);
        let s0 = Summary::of(&[]);
        assert_eq!(s0.n, 0);
        assert_eq!(s0.mean, 0.0);
        assert!(s0.min.is_infinite());
    }

    #[test]
    fn display_format_matches_paper_tables() {
        let s = Summary::of(&[10.0, 11.3]);
        let text = s.display(2);
        assert!(text.contains(" ± "));
        assert!(text.starts_with("10.65"));
    }

    #[test]
    fn accumulator_matches_two_pass_summary() {
        let values = [3.0, -1.5, 0.25, 8.0, 8.0, 2.5, -7.0];
        let mut acc = Accumulator::new();
        for &v in &values {
            acc.push(v);
        }
        let a = acc.summary();
        let b = Summary::of(&values);
        assert_eq!(a.n, b.n);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        for (x, y) in [(a.mean, b.mean), (a.sd, b.sd), (a.ci95, b.ci95)] {
            assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn accumulator_empty_and_singleton_match_of() {
        let empty = Accumulator::new().summary();
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        assert!(empty.min.is_infinite() && empty.max.is_infinite());
        let mut one = Accumulator::new();
        one.push(7.5);
        let s = one.summary();
        assert_eq!((s.n, s.mean, s.sd, s.ci95), (1, 7.5, 0.0, 0.0));
        assert_eq!((s.min, s.max), (7.5, 7.5));
    }

    #[test]
    fn accumulator_fixed_order_is_deterministic() {
        // The sharded-sweep parity guarantee: the same push order gives
        // bit-identical accumulators (and hence bit-identical tables).
        let values: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &v in &values {
            a.push(v);
            b.push(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.summary().display(6), b.summary().display(6));
    }

    #[test]
    fn accumulator_merge_combines_partials() {
        let values: Vec<f64> = (0..40).map(|i| (i as f64).sqrt() - 3.0).collect();
        let mut whole = Accumulator::new();
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for (i, &v) in values.iter().enumerate() {
            whole.push(v);
            if i < 13 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        let (m, w) = (merged.summary(), whole.summary());
        assert_eq!(m.min, w.min);
        assert_eq!(m.max, w.max);
        for (x, y) in [(m.mean, w.mean), (m.sd, w.sd)] {
            assert!((x - y).abs() <= 1e-10 * y.abs().max(1.0), "{x} vs {y}");
        }
        // Merging an empty accumulator is the identity, both ways.
        let mut id = whole;
        id.merge(&Accumulator::new());
        assert_eq!(id, whole);
        let mut from_empty = Accumulator::new();
        from_empty.merge(&whole);
        assert_eq!(from_empty, whole);
    }

    #[test]
    fn of_iter_matches_of() {
        let a = Summary::of(&[1.0, 2.0, 3.0]);
        let b = Summary::of_iter([1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        // JSON float formatting may lose the last ULP; compare with
        // tolerance rather than bitwise.
        let s = Summary::of(&[1.0, 4.0, 9.0]);
        let back: Summary = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s.n, back.n);
        for (a, b) in [
            (s.mean, back.mean),
            (s.sd, back.sd),
            (s.min, back.min),
            (s.max, back.max),
            (s.ci95, back.ci95),
        ] {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}
